open Relal

let table_name = "profiles"
let revs_table_name = "profile_revs"

(* ------------------------- revisions and hooks ----------------------

   Per-(database, user) monotonic revision counters, bumped on every
   {e effective} mutation, plus subscriber hooks — the invalidation
   signal for {!Perso_cache}.  The state lives outside [Database.t]
   (the catalog is a relalgebra concern), in a small registry keyed by
   physical database identity.  All registry state is held in [Atomic]
   cells over immutable values so concurrent readers (personalize
   workers under the server's read lock) never observe a half-updated
   structure while a writer (save/delete under the write lock, or a
   different server entirely) mutates it. *)

module SMap = Map.Make (String)

type event = Saved | Deleted

type reg = {
  reg_db : Database.t;
  revs : int SMap.t Atomic.t;
  hooks : (user:string -> event -> unit) list Atomic.t;
  backend : Perso_store.Backend.t option Atomic.t;
}

let registry : reg list Atomic.t = Atomic.make []
let registry_cap = 16

(* The revision high-water marks persist as an ordinary catalog table,

     PROFILE_REVS(username string, revision int)

   rewritten on every effective mutation, so they travel with CSV dumps
   exactly like the profiles themselves.  A fresh registry entry seeds
   from that table: a reloaded server resumes {e above} the old marks
   instead of restarting at 0 and silently revalidating stale
   [Perso_cache] keys. *)
let initial_revs db =
  match Database.find_table db revs_table_name with
  | None -> SMap.empty
  | Some t ->
      Table.fold t ~init:SMap.empty ~f:(fun acc row ->
          match (row.(0), row.(1)) with
          | Value.Str user, Value.Int rev when rev > 0 ->
              SMap.add user (max rev (Option.value ~default:0 (SMap.find_opt user acc))) acc
          | _ -> acc)

let rec reg_for db =
  let regs = Atomic.get registry in
  match List.find_opt (fun r -> r.reg_db == db) regs with
  | Some r -> r
  | None ->
      let r =
        {
          reg_db = db;
          revs = Atomic.make (initial_revs db);
          hooks = Atomic.make [];
          backend = Atomic.make None;
        }
      in
      (* Newest first; drop the oldest beyond the cap so long-lived
         processes cycling through throwaway databases (tests, sim
         scenarios) do not pin them all. *)
      let next = r :: List.filteri (fun i _ -> i < registry_cap - 1) regs in
      if Atomic.compare_and_set registry regs next then r else reg_for db

let rec atomic_update cell f =
  let v = Atomic.get cell in
  if Atomic.compare_and_set cell v (f v) then () else atomic_update cell f

let revision db ~user =
  let user = String.lowercase_ascii user in
  match SMap.find_opt user (Atomic.get (reg_for db).revs) with
  | Some r -> r
  | None -> 0

let revisions db = SMap.bindings (Atomic.get (reg_for db).revs)

let subscribe db hook = atomic_update (reg_for db).hooks (fun hs -> hook :: hs)

let install_revs db =
  if not (Database.mem_table db revs_table_name) then
    Database.add_table db
      (Schema.make ~name:revs_table_name
         ~cols:[ ("username", Value.TStr); ("revision", Value.TInt) ]
         ())

(* Raw rewrite — deliberately no chaos crossings: the revision table is
   bookkeeping riding on a mutation whose fault points already fired. *)
let write_revs_rows db rows =
  install_revs db;
  let t = Database.table db revs_table_name in
  Table.clear t;
  List.iter
    (fun (user, rev) -> Table.insert t [| Value.Str user; Value.Int rev |])
    rows

let set_rev_row db user rev =
  install_revs db;
  let t = Database.table db revs_table_name in
  let others =
    List.filter
      (fun row -> not (Value.equal row.(0) (Value.Str user)))
      (Table.to_list t)
  in
  Table.clear t;
  List.iter (Table.insert t) others;
  Table.insert t [| Value.Str user; Value.Int rev |]

let seed_revisions db pairs =
  let r = reg_for db in
  atomic_update r.revs (fun m ->
      List.fold_left
        (fun m (user, rev) ->
          if rev > max 0 (Option.value ~default:0 (SMap.find_opt user m)) then
            SMap.add user rev m
          else m)
        m pairs);
  write_revs_rows db (SMap.bindings (Atomic.get r.revs))

let notify db ~user event =
  let r = reg_for db in
  atomic_update r.revs (fun m ->
      SMap.add user (1 + Option.value ~default:0 (SMap.find_opt user m)) m);
  (match SMap.find_opt user (Atomic.get r.revs) with
  | Some rev -> set_rev_row db user rev
  | None -> ());
  List.iter (fun hook -> hook ~user event) (Atomic.get r.hooks)

let install db =
  if not (Database.mem_table db table_name) then
    Database.add_table db
      (Schema.make ~name:table_name
         ~cols:
           [
             ("username", Value.TStr); ("condition", Value.TStr);
             ("degree", Value.TFloat);
           ]
         ())

(* The table is append-only storage; user-level replace rewrites it.
   Cardinalities are small (profiles), so the rebuild is cheap.

   The rewrite is all-or-nothing: a fault between the clear and the last
   insert (the {!Chaos.Store_mutate} point is crossed once per row) rolls
   the table back to its pre-rewrite rows before re-raising, so a
   concurrent or subsequent [load] sees either the old or the new profile
   — never an empty or partial one.  The snapshot is safe to restore
   because [Table.clear] drops the backing batch rather than reusing its
   row arrays. *)
let rewrite db keep_rows =
  let t = Database.table db table_name in
  let before = Table.to_list t in
  Table.clear t;
  try
    List.iter
      (fun row ->
        Chaos.point Chaos.Store_mutate;
        Table.insert t row)
      keep_rows
  with e ->
    Table.clear t;
    List.iter (Table.insert t) before;
    raise e

let rows_for db user keep =
  match Database.find_table db table_name with
  | None -> []
  | Some t ->
      List.filter
        (fun row -> Value.equal row.(0) (Value.Str user) = keep)
        (Table.to_list t)

let rows_except db user = rows_for db user false
let rows_of db user = rows_for db user true

let row_equal a b =
  Array.length a = Array.length b && Array.for_all2 Value.equal a b

(* Raw rollback used when a durable-backend append fails after the
   table rewrite: restore the exact previous rows without crossing
   chaos points again (the failure being handled may itself be an
   injected fault; the rollback must not roll a second coin). *)
let restore_rows db rows =
  let t = Database.table db table_name in
  Table.clear t;
  List.iter (Table.insert t) rows

let entries_of_profile profile =
  List.map
    (fun (atom, deg) ->
      { Perso_store.Codec.cond = Atom.to_string atom;
        degree = Degree.to_float deg })
    (Profile.entries profile)

let attach db backend = Atomic.set (reg_for db).backend (Some backend)
let attached db = Atomic.get (reg_for db).backend

(* Write-through: the in-memory table mutates first (it rolls itself
   back on faults), then the WAL append makes the mutation durable,
   then the revision bump + hooks acknowledge it.  A backend failure
   unwinds the table so memory never claims what the disk refused. *)
let backend_apply db ~user before f =
  match Atomic.get (reg_for db).backend with
  | None -> ()
  | Some b -> (
      let next = 1 + revision db ~user in
      try f b ~next
      with e ->
        restore_rows db before;
        raise e)

let save db ~user profile =
  install db;
  let user = String.lowercase_ascii user in
  let mine =
    List.map
      (fun (atom, deg) ->
        [|
          Value.Str user;
          Value.Str (Atom.to_string atom);
          Value.Float (Degree.to_float deg);
        |])
      (Profile.entries profile)
  in
  (* Re-saving a semantically identical profile is a no-op: no table
     rewrite (so no dump churn), no revision bump (so cached plans for
     the user stay valid). *)
  if not (List.equal row_equal (rows_of db user) mine) then begin
    let before = Table.to_list (Database.table db table_name) in
    rewrite db (rows_except db user @ mine);
    backend_apply db ~user before (fun b ~next ->
        b.Perso_store.Backend.save ~user ~revision:next
          (entries_of_profile profile));
    notify db ~user Saved
  end

let load db ~user =
  Chaos.point Chaos.Profile_load;
  let user = String.lowercase_ascii user in
  match Database.find_table db table_name with
  | None -> Ok Profile.empty
  | Some t ->
      let errors = ref [] in
      let profile = ref Profile.empty in
      Table.iter t (fun row ->
          if Value.equal row.(0) (Value.Str user) then begin
            match (row.(1), row.(2)) with
            | Value.Str cond, Value.Float deg -> (
                match
                  ( Atom.of_pred (Sql_parser.parse_pred cond),
                    Degree.of_float_opt deg )
                with
                | Ok atom, Some d when not (Degree.equal d Degree.zero) ->
                    profile := Profile.add !profile atom d
                | Ok _, _ ->
                    errors := Printf.sprintf "bad degree %g for %s" deg cond :: !errors
                | Error e, _ -> errors := e :: !errors
                | exception Sql_parser.Parse_error e ->
                    errors := Printf.sprintf "%s: %s" cond e :: !errors
                | exception Sql_lexer.Lex_error (e, _) ->
                    errors := Printf.sprintf "%s: %s" cond e :: !errors)
            | _ -> errors := "malformed profile row" :: !errors
          end);
      if !errors = [] then Ok !profile else Error (List.rev !errors)

let load_r db ~user =
  match Error.guard (fun () -> load db ~user) with
  | Error e -> Error e
  | Ok (Ok p) -> Ok p
  | Ok (Error errs) -> Error (Error.Profile (String.concat "; " errs))

let users db =
  match Database.find_table db table_name with
  | None -> []
  | Some t ->
      Table.fold t ~init:[] ~f:(fun acc row ->
          match row.(0) with Value.Str u -> u :: acc | _ -> acc)
      |> List.sort_uniq String.compare

let delete db ~user =
  let user = String.lowercase_ascii user in
  if Database.mem_table db table_name && rows_of db user <> [] then begin
    let before = Table.to_list (Database.table db table_name) in
    rewrite db (rows_except db user);
    backend_apply db ~user before (fun b ~next ->
        b.Perso_store.Backend.delete ~user ~revision:next);
    notify db ~user Deleted
  end

(* ------------------------- durable backends ------------------------- *)

let malformed_export user =
  raise
    (Perso_store.Store.Store_error
       (Perso_store.Store.Malformed
          {
            file = table_name;
            detail =
              Printf.sprintf
                "profile row for %S is not (string, string, float) — refusing \
                 to export it to a durable store"
                user;
          }))

let export db backend =
  let groups : (string, Perso_store.Codec.entry list) Hashtbl.t =
    Hashtbl.create 64
  in
  (match Database.find_table db table_name with
  | None -> ()
  | Some t ->
      Table.iter t (fun row ->
          match (row.(0), row.(1), row.(2)) with
          | Value.Str user, Value.Str cond, Value.Float degree ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt groups user) in
              Hashtbl.replace groups user
                (prev @ [ { Perso_store.Codec.cond; degree } ])
          | Value.Str user, _, _ -> malformed_export user
          | _ -> malformed_export "<non-string username>"));
  Hashtbl.fold (fun user entries acc -> (user, entries) :: acc) groups []
  |> List.sort compare
  |> List.iter (fun (user, entries) ->
         backend.Perso_store.Backend.save ~user
           ~revision:(revision db ~user)
           entries)

let restore db backend =
  install db;
  let t = Database.table db table_name in
  backend.Perso_store.Backend.iter (fun ~user ~revision:_ entries ->
      List.iter
        (fun { Perso_store.Codec.cond; degree } ->
          Table.insert t
            [| Value.Str user; Value.Str cond; Value.Float degree |])
        entries);
  seed_revisions db (backend.Perso_store.Backend.revisions ());
  attach db backend
