open Relal

let table_name = "profiles"

(* ------------------------- revisions and hooks ----------------------

   Per-(database, user) monotonic revision counters, bumped on every
   {e effective} mutation, plus subscriber hooks — the invalidation
   signal for {!Perso_cache}.  The state lives outside [Database.t]
   (the catalog is a relalgebra concern), in a small registry keyed by
   physical database identity.  All registry state is held in [Atomic]
   cells over immutable values so concurrent readers (personalize
   workers under the server's read lock) never observe a half-updated
   structure while a writer (save/delete under the write lock, or a
   different server entirely) mutates it. *)

module SMap = Map.Make (String)

type event = Saved | Deleted

type reg = {
  reg_db : Database.t;
  revs : int SMap.t Atomic.t;
  hooks : (user:string -> event -> unit) list Atomic.t;
}

let registry : reg list Atomic.t = Atomic.make []
let registry_cap = 16

let rec reg_for db =
  let regs = Atomic.get registry in
  match List.find_opt (fun r -> r.reg_db == db) regs with
  | Some r -> r
  | None ->
      let r =
        { reg_db = db; revs = Atomic.make SMap.empty; hooks = Atomic.make [] }
      in
      (* Newest first; drop the oldest beyond the cap so long-lived
         processes cycling through throwaway databases (tests, sim
         scenarios) do not pin them all. *)
      let next = r :: List.filteri (fun i _ -> i < registry_cap - 1) regs in
      if Atomic.compare_and_set registry regs next then r else reg_for db

let rec atomic_update cell f =
  let v = Atomic.get cell in
  if Atomic.compare_and_set cell v (f v) then () else atomic_update cell f

let revision db ~user =
  let user = String.lowercase_ascii user in
  match SMap.find_opt user (Atomic.get (reg_for db).revs) with
  | Some r -> r
  | None -> 0

let subscribe db hook = atomic_update (reg_for db).hooks (fun hs -> hook :: hs)

let notify db ~user event =
  let r = reg_for db in
  atomic_update r.revs (fun m ->
      SMap.add user (1 + Option.value ~default:0 (SMap.find_opt user m)) m);
  List.iter (fun hook -> hook ~user event) (Atomic.get r.hooks)

let install db =
  if not (Database.mem_table db table_name) then
    Database.add_table db
      (Schema.make ~name:table_name
         ~cols:
           [
             ("username", Value.TStr); ("condition", Value.TStr);
             ("degree", Value.TFloat);
           ]
         ())

(* The table is append-only storage; user-level replace rewrites it.
   Cardinalities are small (profiles), so the rebuild is cheap.

   The rewrite is all-or-nothing: a fault between the clear and the last
   insert (the {!Chaos.Store_mutate} point is crossed once per row) rolls
   the table back to its pre-rewrite rows before re-raising, so a
   concurrent or subsequent [load] sees either the old or the new profile
   — never an empty or partial one.  The snapshot is safe to restore
   because [Table.clear] drops the backing batch rather than reusing its
   row arrays. *)
let rewrite db keep_rows =
  let t = Database.table db table_name in
  let before = Table.to_list t in
  Table.clear t;
  try
    List.iter
      (fun row ->
        Chaos.point Chaos.Store_mutate;
        Table.insert t row)
      keep_rows
  with e ->
    Table.clear t;
    List.iter (Table.insert t) before;
    raise e

let rows_for db user keep =
  match Database.find_table db table_name with
  | None -> []
  | Some t ->
      List.filter
        (fun row -> Value.equal row.(0) (Value.Str user) = keep)
        (Table.to_list t)

let rows_except db user = rows_for db user false
let rows_of db user = rows_for db user true

let row_equal a b =
  Array.length a = Array.length b && Array.for_all2 Value.equal a b

let save db ~user profile =
  install db;
  let user = String.lowercase_ascii user in
  let mine =
    List.map
      (fun (atom, deg) ->
        [|
          Value.Str user;
          Value.Str (Atom.to_string atom);
          Value.Float (Degree.to_float deg);
        |])
      (Profile.entries profile)
  in
  (* Re-saving a semantically identical profile is a no-op: no table
     rewrite (so no dump churn), no revision bump (so cached plans for
     the user stay valid). *)
  if not (List.equal row_equal (rows_of db user) mine) then begin
    rewrite db (rows_except db user @ mine);
    notify db ~user Saved
  end

let load db ~user =
  Chaos.point Chaos.Profile_load;
  let user = String.lowercase_ascii user in
  match Database.find_table db table_name with
  | None -> Ok Profile.empty
  | Some t ->
      let errors = ref [] in
      let profile = ref Profile.empty in
      Table.iter t (fun row ->
          if Value.equal row.(0) (Value.Str user) then begin
            match (row.(1), row.(2)) with
            | Value.Str cond, Value.Float deg -> (
                match
                  ( Atom.of_pred (Sql_parser.parse_pred cond),
                    Degree.of_float_opt deg )
                with
                | Ok atom, Some d when not (Degree.equal d Degree.zero) ->
                    profile := Profile.add !profile atom d
                | Ok _, _ ->
                    errors := Printf.sprintf "bad degree %g for %s" deg cond :: !errors
                | Error e, _ -> errors := e :: !errors
                | exception Sql_parser.Parse_error e ->
                    errors := Printf.sprintf "%s: %s" cond e :: !errors
                | exception Sql_lexer.Lex_error (e, _) ->
                    errors := Printf.sprintf "%s: %s" cond e :: !errors)
            | _ -> errors := "malformed profile row" :: !errors
          end);
      if !errors = [] then Ok !profile else Error (List.rev !errors)

let load_r db ~user =
  match Error.guard (fun () -> load db ~user) with
  | Error e -> Error e
  | Ok (Ok p) -> Ok p
  | Ok (Error errs) -> Error (Error.Profile (String.concat "; " errs))

let users db =
  match Database.find_table db table_name with
  | None -> []
  | Some t ->
      Table.fold t ~init:[] ~f:(fun acc row ->
          match row.(0) with Value.Str u -> u :: acc | _ -> acc)
      |> List.sort_uniq String.compare

let delete db ~user =
  let user = String.lowercase_ascii user in
  if Database.mem_table db table_name && rows_of db user <> [] then begin
    rewrite db (rows_except db user);
    notify db ~user Deleted
  end
