type t =
  | Parse of string
  | Lex of { msg : string; pos : int }
  | Bind of string
  | Not_conjunctive of string
  | Profile of string
  | Storage of string
  | Resource_exhausted of Relal.Governor.progress
  | Overloaded of string
  | Usage of string
  | Internal of string

let no_progress exhausted =
  { Relal.Governor.exhausted; rows_produced = 0; expansions = 0;
    elapsed_ms = 0. }

let of_exn = function
  | Relal.Sql_parser.Parse_error e -> Some (Parse e)
  | Relal.Sql_lexer.Lex_error (msg, pos) -> Some (Lex { msg; pos })
  | Relal.Binder.Bind_error e -> Some (Bind e)
  | Qgraph.Not_conjunctive e -> Some (Not_conjunctive e)
  | Integrate.Integration_error e -> Some (Internal ("integration: " ^ e))
  | Relal.Exec.Exec_error e -> Some (Internal e)
  | Relal.Csv.Csv_error e -> Some (Storage e)
  | Relal.Ddl.Ddl_error e -> Some (Storage e)
  | Sys_error e -> Some (Storage e)
  | Relal.Governor.Exhausted p -> Some (Resource_exhausted p)
  | Relal.Chaos.Injected { point; transient } -> (
      let msg =
        Printf.sprintf "injected %s fault at %s"
          (if transient then "transient" else "permanent")
          (Relal.Chaos.point_name point)
      in
      match point with
      | Relal.Chaos.Profile_load | Relal.Chaos.Persist_write
      | Relal.Chaos.Store_mutate | Relal.Chaos.Wal_append
      | Relal.Chaos.Wal_fsync | Relal.Chaos.Manifest_write
      | Relal.Chaos.Compact_write | Relal.Chaos.Compact_rename
      | Relal.Chaos.Ship_append | Relal.Chaos.Scrub_read
      | Relal.Chaos.Promote ->
          Some (Storage msg)
      | Relal.Chaos.Scan | Relal.Chaos.Join_build | Relal.Chaos.Join_probe ->
          Some (Internal msg))
  | Relal.Chaos.Crashed { point } ->
      Some
        (Storage
           (Printf.sprintf "simulated crash at %s"
              (Relal.Chaos.point_name point)))
  | Perso_store.Store.Store_error e ->
      Some (Storage (Perso_store.Store.error_to_string e))
  | Perso_store.Codec.Decode_error e ->
      Some (Storage ("profile record: " ^ e))
  | Stack_overflow -> Some (Resource_exhausted (no_progress "stack"))
  | Out_of_memory -> Some (Resource_exhausted (no_progress "memory"))
  | Invalid_argument e -> Some (Internal ("invalid argument: " ^ e))
  | Failure e -> Some (Internal e)
  | _ -> None

let of_exn_any e =
  match of_exn e with Some t -> t | None -> Internal (Printexc.to_string e)

let of_load_error e = Storage (Relal.Csv.load_error_to_string e)

let guard f =
  match f () with v -> Ok v | exception e -> Error (of_exn_any e)

let to_string = function
  | Parse e -> "parse error: " ^ e
  | Lex { msg; pos } -> Printf.sprintf "lex error: %s (at byte %d)" msg pos
  | Bind e -> "bind error: " ^ e
  | Not_conjunctive e -> "not a conjunctive SPJ query: " ^ e
  | Profile e -> "profile error: " ^ e
  | Storage e -> "storage error: " ^ e
  | Resource_exhausted p ->
      "resource exhausted: " ^ Relal.Governor.progress_to_string p
  | Overloaded e -> "overloaded: " ^ e
  | Usage e -> "usage error: " ^ e
  | Internal e -> "internal error: " ^ e

let pp fmt t = Format.pp_print_string fmt (to_string t)

let family_name = function
  | Parse _ -> "parse"
  | Lex _ -> "lex"
  | Bind _ -> "bind"
  | Not_conjunctive _ -> "not-conjunctive"
  | Profile _ -> "profile"
  | Storage _ -> "storage"
  | Resource_exhausted _ -> "resource-exhausted"
  | Overloaded _ -> "overloaded"
  | Usage _ -> "usage"
  | Internal _ -> "internal"

(* One exit code per family, so scripts can branch: user errors are
   retriable after fixing the request, storage errors after fixing the
   data, resource errors with a bigger budget, overload errors by
   retrying later against a less busy server. *)
let exit_code = function
  | Parse _ | Lex _ | Bind _ | Not_conjunctive _ | Profile _ -> 1
  | Storage _ -> 2
  | Resource_exhausted _ -> 3
  | Internal _ -> 4
  | Overloaded _ -> 5
  | Usage _ -> 6
