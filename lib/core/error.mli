(** Typed error taxonomy for the personalization service layer.

    Every failure mode of the pipeline — lexing/parsing, binding,
    non-conjunctive inputs, profile problems, storage, resource budgets,
    engine internals — is one constructor of {!t}.  Result-returning
    entry points ({!Personalize.personalize_sql_r},
    {!Relal.Csv.load_db_r}, {!Profile_store.load_r}) produce these
    directly; {!guard} converts any raising call, so [bin/] entry points
    can promise that no raw exception escapes.

    The mapping from exceptions is total: known library exceptions map
    to their family, [Stack_overflow]/[Out_of_memory] to
    [Resource_exhausted], injected chaos faults to [Storage] or
    [Internal] depending on the injection point, and anything unknown to
    [Internal]. *)

type t =
  | Parse of string
  | Lex of { msg : string; pos : int }
  | Bind of string
  | Not_conjunctive of string  (** personalization needs SPJ inputs *)
  | Profile of string  (** unreadable or malformed profile *)
  | Storage of string  (** dump/DDL/CSV/file-system failures *)
  | Resource_exhausted of Relal.Governor.progress
      (** a budget ran out; carries partial-progress statistics *)
  | Overloaded of string
      (** the service shed this request instead of doing the work:
          admission queue full, deadline expired while queued, server
          draining, or a circuit breaker open for the operation.  The
          request is safe to retry elsewhere or later — no work was
          started. *)
  | Usage of string
      (** a malformed request at the interface boundary: out-of-range
          CLI flags (zero/negative shard or domain counts, empty cache
          budgets), unparseable [--store] specs.  Fix the invocation
          and retry. *)
  | Internal of string  (** engine invariant violations, unknown exceptions *)

val of_exn : exn -> t option
(** Classify a known exception; [None] for exceptions outside the
    taxonomy. *)

val of_exn_any : exn -> t
(** Total classifier: unknown exceptions become [Internal]. *)

val of_load_error : Relal.Csv.load_error -> t

val guard : (unit -> 'a) -> ('a, t) result
(** Run a computation, converting any exception (including
    [Stack_overflow] and [Out_of_memory]) into a typed error. *)

val to_string : t -> string
(** One-line message, e.g. ["parse error: ..."], ["resource exhausted:
    rows after 12 rows, 3 expansions, 0.41 ms"]. *)

val pp : Format.formatter -> t -> unit

val family_name : t -> string
(** Short stable family tag for wire protocols and logs: ["parse"],
    ["lex"], ["bind"], ["not-conjunctive"], ["profile"], ["storage"],
    ["resource-exhausted"], ["overloaded"], ["usage"], ["internal"]. *)

val exit_code : t -> int
(** Process exit code per family: user errors 1, storage 2, resource 3,
    internal 4, overloaded 5, usage 6.  Never 0. *)
