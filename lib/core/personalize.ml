open Relal

type params = {
  k : Criteria.t;
  m : [ `Count of int | `Min_degree of float ];
  l : [ `At_least of int | `Min_doi of float ];
  method_ : [ `SQ | `MQ ];
  rank : bool;
}

let default_params =
  { k = Criteria.Top_r 5; m = `Count 0; l = `At_least 1; method_ = `MQ; rank = true }

type outcome = {
  selected : Path.t list;
  mandatory : Integrate.instantiated list;
  optional : Integrate.instantiated list;
  personalized : Sql_ast.query;
  selection_stats : Select.stats;
}

let integrate_selected ?(params = default_params) db qg ~stats selected =
  let instantiated = Integrate.instantiate db qg selected in
  let mandatory, optional =
    Integrate.split_mandatory ~m:params.m instantiated (fun i ->
        i.Integrate.path.Path.degree)
  in
  (* Clamp L to the available optional preferences so interactive callers
     get the best achievable requirement rather than an error. *)
  let personalized =
    match params.method_ with
    | `SQ ->
        let l =
          match params.l with
          | `At_least n -> min n (List.length optional)
          | `Min_doi _ ->
              invalid_arg "SQ integration does not support a minimum-degree L"
        in
        Integrate.sq db qg ~mandatory ~optional ~l
    | `MQ ->
        let l =
          match params.l with
          | `At_least n -> `At_least (min n (List.length optional))
          | `Min_doi d -> `Min_doi d
        in
        Integrate.mq ~rank:params.rank db qg ~mandatory ~optional ~l ()
  in
  { selected; mandatory; optional; personalized; selection_stats = stats }

let personalize ?(params = default_params) ?related ?gov db profile q =
  let q = Binder.bind db q in
  let qg = Qgraph.of_query db q in
  let g = Pgraph.of_profile profile in
  let stats = Select.fresh_stats () in
  let selected = Select.select ~stats ?gov ?related db g qg params.k in
  integrate_selected ~params db qg ~stats selected

let execute ?strategy ?gov db outcome =
  Engine.run_query ?strategy ?gov db outcome.personalized

let personalize_sql ?params db profile sql =
  let q = Sql_parser.parse sql in
  let outcome = personalize ?params db profile q in
  (outcome, execute db outcome)

(* ------------------------- resilient entry points ------------------- *)

type degradation =
  | Reduced of { params : params; cause : Error.t }
  | Unpersonalized of { cause : Error.t }

type run = {
  outcome : outcome option;
  result : Exec.result;
  degradations : degradation list;
}

(* One rung down the ladder: halve how much personalization the request
   asks for.  Top-K halves; degree thresholds move halfway towards 1
   (stricter admission, smaller P_K); the L requirement weakens. *)
let halve_params p =
  let towards_one d = Degree.of_float ((1. +. Degree.to_float d) /. 2.) in
  let k =
    match p.k with
    | Criteria.Top_r r -> Criteria.Top_r (max 1 (r / 2))
    | Criteria.Above d -> Criteria.Above (towards_one d)
    | Criteria.Disj_above d -> Criteria.Disj_above (towards_one d)
    | Criteria.Conj_above d -> Criteria.Conj_above (towards_one d)
  in
  let l =
    match p.l with
    | `At_least n -> `At_least (n / 2)
    | `Min_doi d -> `Min_doi (d /. 2.)
  in
  { p with k; l }

(* Which failures another rung can plausibly fix: smaller K/L (or no
   personalization at all) shrinks the rewritten query, so resource
   exhaustion and internal/engine failures are worth retrying under.
   Parse/bind/profile/storage failures are invariant down the ladder. *)
let degradable = function
  | Error.Resource_exhausted _ | Error.Internal _ | Error.Not_conjunctive _ ->
      true
  | Error.Parse _ | Error.Lex _ | Error.Bind _ | Error.Profile _
  | Error.Storage _ | Error.Overloaded _ | Error.Usage _ ->
      false

let personalize_r_with ?(params = default_params) ?(budget = Governor.unlimited)
    ~compute db q =
  (* Each rung gets the full budget: the deadline measures one attempt's
     work, not the ladder's total (callers wanting a global cap can arm
     a shorter deadline). *)
  let fresh_gov () =
    if Governor.is_unlimited budget then None else Some (Governor.start budget)
  in
  let attempt ps =
    Chaos.retry (fun () ->
        let gov = fresh_gov () in
        let outcome = compute ~params:ps ~gov in
        let res = execute ?gov db outcome in
        (outcome, res))
  in
  let unpersonalized steps cause =
    let step = Unpersonalized { cause } in
    match
      Chaos.retry (fun () -> Engine.run_query ?gov:(fresh_gov ()) db q)
    with
    | res ->
        Ok { outcome = None; result = res; degradations = steps @ [ step ] }
    | exception e -> Error (Error.of_exn_any e)
  in
  match attempt params with
  | outcome, res ->
      Ok { outcome = Some outcome; result = res; degradations = [] }
  | exception e -> (
      let cause = Error.of_exn_any e in
      if not (degradable cause) then Error cause
      else
        match cause with
        | Error.Not_conjunctive _ ->
            (* No amount of K/L reduction makes a non-SPJ query
               personalizable; execute it plain. *)
            unpersonalized [] cause
        | _ -> (
            let ps = halve_params params in
            let step = Reduced { params = ps; cause } in
            match attempt ps with
            | outcome, res ->
                Ok
                  {
                    outcome = Some outcome;
                    result = res;
                    degradations = [ step ];
                  }
            | exception e2 ->
                let cause2 = Error.of_exn_any e2 in
                if degradable cause2 then unpersonalized [ step ] cause2
                else Error cause2))

let personalize_r ?params ?budget ?related db profile q =
  personalize_r_with ?params ?budget db q ~compute:(fun ~params ~gov ->
      personalize ~params ?related ?gov db profile q)

let personalize_sql_r ?params ?budget ?related db profile sql =
  match Sql_parser.parse sql with
  | q -> personalize_r ?params ?budget ?related db profile q
  | exception e -> Error (Error.of_exn_any e)

let degradation_to_string = function
  | Reduced { params; cause } ->
      let l =
        match params.l with
        | `At_least n -> string_of_int n
        | `Min_doi d -> Printf.sprintf "doi>=%.2f" d
      in
      Printf.sprintf "reduced personalization (K: %s, L: %s) after %s"
        (Criteria.to_string params.k) l (Error.to_string cause)
  | Unpersonalized { cause } ->
      "dropped personalization after " ^ Error.to_string cause

let top_n ?strategy ~n db outcome =
  let res = execute ?strategy db outcome in
  { res with Exec.rows = List.filteri (fun i _ -> i < n) res.Exec.rows }

module Context = struct
  type device = Mobile | Desktop | Voice

  type t = { device : device; latency_budget_ms : float option }

  let params_for t =
    let base =
      match t.device with
      | Mobile -> { default_params with k = Criteria.Top_r 3 }
      | Desktop -> { default_params with k = Criteria.Top_r 10 }
      | Voice ->
          {
            default_params with
            k = Criteria.Top_r 2;
            l = `Min_doi 0.5;
          }
    in
    match t.latency_budget_ms with
    | Some ms when ms < 50. -> (
        match base.k with
        | Criteria.Top_r r -> { base with k = Criteria.Top_r (max 1 (r / 2)) }
        | _ -> base)
    | _ -> base
end
