(** Profiles stored inside the database — the paper's own storage model
    ("User profiles are stored in a separate table", §7).

    The store is an ordinary relation in the catalog,

    {v PROFILES(username string, condition string, degree float) v}

    with one row per atomic preference, the condition in the same SQL
    syntax the text format uses.  Several users share the table; loading
    a user reconstructs her {!Profile.t}.  Because the store is a plain
    table, it travels with {!Relal.Csv.save_db}/[load_db] dumps and can
    be inspected with ordinary queries. *)

val table_name : string
(** ["profiles"]. *)

val install : Relal.Database.t -> unit
(** Create the profiles table if absent (idempotent). *)

val save : Relal.Database.t -> user:string -> Profile.t -> unit
(** Replace the user's stored preferences with the given profile
    ({!install}s the table if needed). *)

val load : Relal.Database.t -> user:string -> (Profile.t, string list) result
(** Reconstruct a user's profile; an unknown user yields an empty
    profile.  Errors collect unparseable stored rows (e.g. after careless
    hand edits of a CSV dump). *)

val load_r : Relal.Database.t -> user:string -> (Profile.t, Error.t) result
(** {!load} with the failure modes folded into the {!Error} taxonomy:
    unparseable rows become [Error.Profile], injected chaos faults and
    anything else raised become their typed family.  Never raises. *)

val users : Relal.Database.t -> string list
(** Distinct usernames with stored preferences, sorted. *)

val delete : Relal.Database.t -> user:string -> unit
(** Remove a user's preferences. *)
