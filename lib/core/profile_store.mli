(** Profiles stored inside the database — the paper's own storage model
    ("User profiles are stored in a separate table", §7).

    The store is an ordinary relation in the catalog,

    {v PROFILES(username string, condition string, degree float) v}

    with one row per atomic preference, the condition in the same SQL
    syntax the text format uses.  Several users share the table; loading
    a user reconstructs her {!Profile.t}.  Because the store is a plain
    table, it travels with {!Relal.Csv.save_db}/[load_db] dumps and can
    be inspected with ordinary queries. *)

val table_name : string
(** ["profiles"]. *)

val install : Relal.Database.t -> unit
(** Create the profiles table if absent (idempotent). *)

val save : Relal.Database.t -> user:string -> Profile.t -> unit
(** Replace the user's stored preferences with the given profile
    ({!install}s the table if needed).  Saving a profile semantically
    identical to the stored one is a no-op: no table rewrite, no
    {!revision} bump, no subscriber notification — identical re-saves
    must not invalidate cached personalization plans. *)

val load : Relal.Database.t -> user:string -> (Profile.t, string list) result
(** Reconstruct a user's profile; an unknown user yields an empty
    profile.  Errors collect unparseable stored rows (e.g. after careless
    hand edits of a CSV dump). *)

val load_r : Relal.Database.t -> user:string -> (Profile.t, Error.t) result
(** {!load} with the failure modes folded into the {!Error} taxonomy:
    unparseable rows become [Error.Profile], injected chaos faults and
    anything else raised become their typed family.  Never raises. *)

val users : Relal.Database.t -> string list
(** Distinct usernames with stored preferences, sorted. *)

val delete : Relal.Database.t -> user:string -> unit
(** Remove a user's preferences.  A no-op (no revision bump, no
    notification) when the user has none stored. *)

(** {1 Revisions and invalidation hooks}

    Every {e effective} mutation ([save] with a changed profile,
    [delete] of an existing user) bumps a per-(database, user)
    monotonic revision counter and fires subscriber hooks — the cache
    invalidation signal consumed by {!Perso_cache}.  Revision state is
    keyed by physical database identity in a small bounded registry
    outside the catalog, so it does not travel with CSV dumps; a
    reloaded database starts back at revision 0, which is safe because
    its caches start empty too. *)

type event = Saved | Deleted

val revision : Relal.Database.t -> user:string -> int
(** Current revision for the user; [0] before any effective mutation. *)

val subscribe : Relal.Database.t -> (user:string -> event -> unit) -> unit
(** Register a hook fired (in the mutating thread, after the revision
    bump) on each effective [save]/[delete] against this database. *)
