(** Profiles stored inside the database — the paper's own storage model
    ("User profiles are stored in a separate table", §7).

    The store is an ordinary relation in the catalog,

    {v PROFILES(username string, condition string, degree float) v}

    with one row per atomic preference, the condition in the same SQL
    syntax the text format uses.  Several users share the table; loading
    a user reconstructs her {!Profile.t}.  Because the store is a plain
    table, it travels with {!Relal.Csv.save_db}/[load_db] dumps and can
    be inspected with ordinary queries. *)

val table_name : string
(** ["profiles"]. *)

val revs_table_name : string
(** ["profile_revs"] — the revision high-water marks as a catalog table,
    [PROFILE_REVS(username string, revision int)], rewritten on every
    effective mutation so it travels with CSV dumps.  See {!revision}. *)

val install : Relal.Database.t -> unit
(** Create the profiles table if absent (idempotent). *)

val save : Relal.Database.t -> user:string -> Profile.t -> unit
(** Replace the user's stored preferences with the given profile
    ({!install}s the table if needed).  Saving a profile semantically
    identical to the stored one is a no-op: no table rewrite, no
    {!revision} bump, no subscriber notification — identical re-saves
    must not invalidate cached personalization plans. *)

val load : Relal.Database.t -> user:string -> (Profile.t, string list) result
(** Reconstruct a user's profile; an unknown user yields an empty
    profile.  Errors collect unparseable stored rows (e.g. after careless
    hand edits of a CSV dump). *)

val load_r : Relal.Database.t -> user:string -> (Profile.t, Error.t) result
(** {!load} with the failure modes folded into the {!Error} taxonomy:
    unparseable rows become [Error.Profile], injected chaos faults and
    anything else raised become their typed family.  Never raises. *)

val users : Relal.Database.t -> string list
(** Distinct usernames with stored preferences, sorted. *)

val delete : Relal.Database.t -> user:string -> unit
(** Remove a user's preferences.  A no-op (no revision bump, no
    notification) when the user has none stored. *)

(** {1 Revisions and invalidation hooks}

    Every {e effective} mutation ([save] with a changed profile,
    [delete] of an existing user) bumps a per-(database, user)
    monotonic revision counter and fires subscriber hooks — the cache
    invalidation signal consumed by {!Perso_cache}.  Live revision
    state is keyed by physical database identity in a small bounded
    registry outside the catalog; each bump is also mirrored into the
    {!revs_table_name} catalog table, and a fresh registry entry seeds
    from that table, so the high-water marks survive dump/reload and
    process restarts — a reloaded server can never hand out a revision
    number an earlier incarnation already used for a different profile
    (the [Perso_cache]-key validity contract). *)

type event = Saved | Deleted

val revision : Relal.Database.t -> user:string -> int
(** Current revision for the user; [0] before any effective mutation
    (in this process {e or} any dumped-and-reloaded predecessor). *)

val revisions : Relal.Database.t -> (string * int) list
(** All known (user, revision) pairs, sorted; deleted users included. *)

val seed_revisions : Relal.Database.t -> (string * int) list -> unit
(** Raise the registry's high-water marks to at least the given values
    (never lowers) and rewrite the {!revs_table_name} table to match —
    how shard revisions are merged back into the main database at server
    shutdown. *)

val subscribe : Relal.Database.t -> (user:string -> event -> unit) -> unit
(** Register a hook fired (in the mutating thread, after the revision
    bump) on each effective [save]/[delete] against this database. *)

(** {1 Durable backends}

    A database can be attached to a {!Perso_store.Backend.t}; every
    effective [save]/[delete] then writes through to it {e between} the
    table rewrite and the revision bump, with the table rolled back if
    the append fails — memory never acknowledges what the disk refused.
    The in-memory table remains the read path (it is the paper's own
    storage model and the executor scans it); the backend is the
    durable tier. *)

val attach : Relal.Database.t -> Perso_store.Backend.t -> unit
(** Write-through from now on.  Does not copy existing rows — use
    {!export} (memory → backend) or {!restore} (backend → memory)
    first. *)

val attached : Relal.Database.t -> Perso_store.Backend.t option

val export : Relal.Database.t -> Perso_store.Backend.t -> unit
(** Push every stored profile into the backend at its current
    registry revision (sorted user order).
    @raise Perso_store.Store.Store_error on a profile row that is not
    [(string, string, float)] — hand-edited dumps must fail fast rather
    than be silently dropped from the durable tier. *)

val restore : Relal.Database.t -> Perso_store.Backend.t -> unit
(** Load every profile and revision from the backend into the database
    ({!install}ing tables as needed), seed the revision registry, and
    {!attach}.  The recovery path at server startup. *)

val entries_of_profile : Profile.t -> Perso_store.Codec.entry list
(** The codec-row rendering of a profile (condition text + degree),
    matching the in-database table rows byte-for-byte. *)
