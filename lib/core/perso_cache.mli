(** Keyed cache of compiled personalization outcomes, with an
    incremental re-personalization path for single-preference profile
    edits.

    Every PERSONALIZE request otherwise redoes the whole §4 pipeline —
    personalization-graph traversal, top-K preference selection,
    integration — even when the same user replays the same query
    template moments later.  This module caches {!Personalize.outcome}
    values keyed by

    {v (user, K/M/L/method/rank params, normalized query template) v}

    where the template is {!Relal.Sql_print.query_to_key} applied to
    the {e bound} AST.  Entry validity is carried by the user's
    {!Profile_store.revision}: a stored entry remembers the revision
    (and profile snapshot) it was computed under, so a profile mutation
    invalidates all the user's entries implicitly — no key enumeration
    — while keeping the stale outcome available as a donor for
    patching.

    {b Incremental re-personalization} (Chomicki's query-modification
    frame, PAPERS.md): when the profile diff against the donor snapshot
    is a single atomic {e selection} add / remove / retune, the cached
    top-K frontier is patched — the affected selection's paths are
    spliced out and/or recomputed by a bounded re-expansion restricted
    to that selection, merged by degree — and the outcome rebuilt via
    {!Personalize.integrate_selected}, skipping the full graph
    traversal.  The patch is applied only when provably equivalent to a
    cold run (criterion is [Top_r], no relatedness filter, no
    cross-list degree ties that would make FIFO tie-breaking
    unknowable, no cut-off frontier hiding successors); anything else
    falls back to a cold run.  Warm and incremental outputs are
    byte-identical to cold ones — enforced by the oracle relation in
    [lib/sim/oracle.ml].

    The cache is a bounded LRU with approximate byte accounting — a
    cheap typed structural estimate ({!Size_est}, pinned within 2× of
    an exact [Obj.reachable_words] walk by the unit tests).  It
    performs no locking of its own; pass a {!locker} to serialize
    access (the server wraps a {!Runtime.S} mutex so the sim runtime
    exercises the same code single-threaded under virtual time). *)

type locker = { with_lock : 'a. (unit -> 'a) -> 'a }
(** How the cache serializes its internal state.  [with_lock f] must
    run [f] mutually excluded from other [with_lock] calls on the same
    cache.  The default {!no_lock} is for single-threaded callers. *)

val no_lock : locker

type t

type source =
  | Hit  (** served unchanged from a fresh entry *)
  | Incremental  (** patched from a stale entry's outcome *)
  | Miss  (** computed cold (and stored) *)
  | Bypass  (** cache not consulted *)

type stats = {
  hits : int;
  incremental : int;
  misses : int;
  bypasses : int;  (** only counted by {!personalize_sql_r} *)
  evictions : int;  (** entries dropped by the LRU bound *)
  invalidations : int;  (** fresh entries staled or dropped by mutations *)
  entries : int;  (** current occupancy *)
  bytes : int;  (** approximate current footprint *)
}

val create :
  ?lock:locker ->
  ?max_entries:int ->
  ?max_bytes:int ->
  ?incremental:bool ->
  ?store_db:Relal.Database.t ->
  Relal.Database.t ->
  t
(** A cache over [db], subscribed to {!Profile_store} mutation events
    against it ([save] stales the user's entries in place;
    [delete] drops them).  Defaults: [max_entries = 512],
    [max_bytes = 32 MiB], [incremental = true] ([false] disables the
    patch path — stale entries then always recompute cold, which the
    oracle uses as the plain-cached control).

    [store_db] (default [db]) is where profiles, revisions, and
    mutation events live: a sharded server binds each shard's cache to
    its shard store while queries still run against the main database.
    Revision reads and the event subscription go against [store_db];
    binding, selection, and execution go against [db]. *)

val personalize :
  t ->
  ?params:Personalize.params ->
  ?gov:Relal.Governor.t ->
  user:string ->
  ?revision:int ->
  Profile.t ->
  Relal.Sql_ast.query ->
  Personalize.outcome * source
(** Cache-aware {!Personalize.personalize} against the cache's
    database.  [profile] must be the user's current profile; its
    current revision is read from {!Profile_store.revision} unless
    [revision] overrides it (the REPL keys its session-local, never
    stored profile this way).  A [Hit] returns the cached outcome
    (including the donor run's [selection_stats]); [gov] meters only
    cold and patch computation.  Raises exactly as [personalize] does
    (nothing is cached on a raise). *)

val personalize_sql_r :
  ?cache:t ->
  ?user:string ->
  ?revision:int ->
  ?params:Personalize.params ->
  ?budget:Relal.Governor.budget ->
  ?related:(Path.t -> bool) ->
  Relal.Database.t ->
  Profile.t ->
  string ->
  (Personalize.run, Error.t) result * source
(** Cache-aware {!Personalize.personalize_sql_r}: the same degradation
    ladder, with the cache consulted on the full-strength rung only
    (degraded rungs always compute cold and are not cached).  The
    cache is bypassed — [Bypass], one [bypasses] tick — when [cache]
    or [user] is absent, a [related] filter is given, or [cache] was
    built over a different database.  Never raises. *)

val stats : t -> stats
(** Snapshot of the counters (taken under the lock). *)

val invalidate_user : t -> user:string -> int
(** Drop all of a user's entries (stale or fresh), returning how many
    were removed; fresh ones count as invalidations.  Mutations via
    {!Profile_store} do this automatically — this is for explicit
    administrative invalidation. *)

val clear : t -> unit
(** Drop every entry (counted as invalidations of the fresh ones). *)
