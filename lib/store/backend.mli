(** Typed profile-storage backend interface.

    A backend is a record of functions — the [persistent.ml]
    table/decode/bind shape — so the profile registry can write through
    to {e something} without knowing whether it is a Hashtbl (the
    in-memory oracle the crash harness diffs against) or a
    log-structured disk store.  Revisions ride along with every
    mutation: a backend's [revisions] after reopen is the contract that
    lets [Perso_cache] keys stay valid across restarts. *)

type t = {
  name : string;  (** "memory" or "disk" — surfaced in HEALTH *)
  save : user:string -> revision:int -> Codec.entry list -> unit;
  delete : user:string -> revision:int -> unit;
  load : user:string -> Codec.entry list option;
  revision : user:string -> int;  (** 0 when never seen *)
  revisions : unit -> (string * int) list;
      (** all (user, revision), deleted users included, sorted *)
  users : unit -> string list;  (** live users, sorted *)
  iter : (user:string -> revision:int -> Codec.entry list -> unit) -> unit;
      (** live profiles, sorted user order *)
  stats : unit -> Store.stats option;  (** [None] for memory *)
  sync : unit -> unit;
  close : unit -> unit;
}

val memory : unit -> t
(** Volatile backend: exact same observable semantics as [disk] minus
    durability, which makes it the differential oracle. *)

val of_store : Store.t -> t

val disk : ?config:Store.config -> string -> t
(** Open (or create) a {!Store.t} at the directory and wrap it.
    @raise Store.Store_error on recovery failure. *)

val of_replica : Replica.t -> t
(** Wrap a replica set ("replicated" in HEALTH): saves ship to every
    member, reads fail over from a damaged primary automatically. *)
