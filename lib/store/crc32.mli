(** CRC-32 (IEEE 802.3, the zlib polynomial) over strings.

    Used to checksum every frame of the profile store's write-ahead log:
    cheap enough to run on each append, strong enough that a torn or
    bit-flipped frame is detected at recovery instead of being replayed
    as data.  Pure OCaml table-driven implementation; the check value
    for ["123456789"] is [0xCBF43926]. *)

val string : string -> int
(** CRC-32 of a whole string, in [0, 0xFFFFFFFF]. *)

val sub : string -> pos:int -> len:int -> int
(** CRC-32 of a substring. @raise Invalid_argument on bad bounds. *)
