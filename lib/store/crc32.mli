(** CRC-32 (IEEE 802.3, the zlib polynomial) over strings.

    Used to checksum every frame of the profile store's write-ahead log:
    cheap enough to run on each append, strong enough that a torn or
    bit-flipped frame is detected at recovery instead of being replayed
    as data.  Pure OCaml table-driven implementation; the check value
    for ["123456789"] is [0xCBF43926]. *)

val string : string -> int
(** CRC-32 of a whole string, in [0, 0xFFFFFFFF]. *)

val sub : string -> pos:int -> len:int -> int
(** CRC-32 of a substring. @raise Invalid_argument on bad bounds. *)

(** {1 Streaming}

    Incremental form for data that arrives in chunks — the scrubber
    CRCs whole store files without holding them as one string, and the
    replica divergence check compares the resulting per-file rollups.
    For any split of [s] into consecutive chunks, folding {!update}
    over them from {!init} and applying {!finish} equals
    [string s] exactly (property-tested over arbitrary split points). *)

val init : int
(** Starting state (not a valid CRC until {!finish}ed). *)

val update : int -> string -> pos:int -> len:int -> int
(** Fold a chunk into the running state.
    @raise Invalid_argument on bad bounds. *)

val finish : int -> int
(** Final CRC-32 of everything folded in, in [0, 0xFFFFFFFF]. *)
