(** Log-structured on-disk profile store.

    Layout of a store directory:

    {v
    MANIFEST            committed file set (tmp + fsync + atomic rename)
    wal-000007.log      active write-ahead log (CRC-framed records)
    seg-000005.dat      sealed segments, replayed oldest-first
    v}

    Every mutation is one {!Codec.record} appended to the active WAL and
    fsynced before it is acknowledged.  When the WAL passes
    [segment_bytes] it is sealed into the segment list and a fresh one
    started; when enough sealed segments pile up they are compacted into
    a single segment holding each user's latest record — including
    [Delete] tombstones, which must survive compaction so revision
    high-water marks outlive restarts and deletions.

    {b Recovery} ([open_]) replays sealed segments oldest-first, then
    the active WAL.  Sealed segments were fsynced before the manifest
    named them, so any damage there is real corruption: a short or torn
    segment surfaces as {!Torn_log}, a checksum mismatch as {!Bad_crc}.
    The active WAL's tail is different — a crash mid-append legitimately
    leaves a partial frame, so a torn tail is truncated (counted in
    {!stats}) and everything before it replayed; a CRC mismatch {e not}
    at the tail is still {!Bad_crc}.  Files in the directory that the
    manifest does not name (crash leftovers from rotation, compaction,
    or init) are removed.

    All operations are serialized by an internal mutex; concurrency
    comes from sharding (one store per shard), not from intra-store
    parallelism. *)

type config = {
  segment_bytes : int;  (** seal the active WAL beyond this size *)
  compact_segments : int;  (** compact when this many sealed segments *)
  fsync : bool;  (** fsync each acknowledged append (tests turn off) *)
}

val default_config : config
(** 4 MiB segments, compaction at 4 sealed segments, fsync on. *)

type error =
  | Torn_log of { file : string; detail : string }
      (** a sealed segment is shorter than the manifest promises or
          ends mid-frame — durable data went missing *)
  | Bad_crc of { file : string; detail : string }
      (** a structurally complete frame failed its checksum *)
  | Malformed of { file : string; detail : string }
      (** manifest or record contents unparseable *)

exception Store_error of error

val error_to_string : error -> string

type t

val open_r : ?config:config -> string -> (t, error) result
(** Open (creating the directory and an empty store if needed) and run
    recovery.  Unix errors raise; structural damage returns [Error]. *)

val open_ : ?config:config -> string -> t
(** {!open_r}, raising {!Store_error}. *)

val dir : t -> string

(** {1 File-set introspection}

    The scrubber ({!Scrub}) and the replica tier ({!Replica}) reason
    about a store directory's committed file set without opening a
    handle. *)

val manifest_file : string
(** The manifest's file name ("MANIFEST"). *)

val is_store_file : string -> bool
(** Whether a directory-entry name belongs to the store (WAL, segment,
    or manifest temp file — the files recovery may remove as strays). *)

val read_manifest : string -> ((string * int) list * string) option
(** [read_manifest dirname] parses the committed manifest:
    [(sealed (name, size) list, active wal name)], or [None] when the
    directory has no manifest (fresh or never-initialized).
    @raise Store_error ([Malformed]) on an unparseable manifest. *)

val sealed_segments : t -> (string * int) list
(** Sealed [(file, bytes)] list of an open store, oldest first. *)

val active_wal : t -> string * int
(** Active WAL's [(file, acknowledged bytes)]. *)

val save : t -> user:string -> revision:int -> Codec.entry list -> unit
(** Append a [Put] and fsync.  On return the record is durable; on any
    exception it is guaranteed absent (failed appends truncate back),
    except under a simulated crash where recovery enforces the same
    all-or-nothing outcome. *)

val delete : t -> user:string -> revision:int -> unit
(** Append a [Delete] tombstone (revision is kept across restarts). *)

val load : t -> user:string -> Codec.entry list option
(** Point lookup by re-reading the record's frame from disk (CRC
    verified on every read).  [None] for absent or deleted users. *)

val revision : t -> user:string -> int
(** Last acknowledged revision for the user, 0 if never seen. *)

val revisions : t -> (string * int) list
(** All known (user, revision) pairs, deleted users included, sorted. *)

val users : t -> string list
(** Live (non-deleted) users, sorted. *)

val iter : t -> (user:string -> revision:int -> Codec.entry list -> unit) -> unit
(** Iterate live profiles in sorted user order (reads each from disk). *)

type stats = {
  appends : int;  (** acknowledged WAL appends since open *)
  rotations : int;
  compactions : int;
  compact_failures : int;  (** auto-compactions aborted by faults *)
  torn_truncated : int;  (** torn WAL tails truncated at recovery *)
  segments : int;  (** sealed segments currently on disk *)
  live_users : int;
  wal_bytes : int;  (** size of the active WAL *)
}

val stats : t -> stats

val compact_now : t -> unit
(** Seal the active WAL (if non-empty) and compact everything into a
    single segment.  Benchmarks and tests; the serve path relies on the
    automatic trigger. *)

val sync : t -> unit
val close : t -> unit

val abandon : t -> unit
(** Drop the handle without syncing — closes descriptors and nothing
    else, simulating a process kill for the crash-recovery harness.
    The next {!open_} sees exactly what a real crash would leave. *)
