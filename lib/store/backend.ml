type t = {
  name : string;
  save : user:string -> revision:int -> Codec.entry list -> unit;
  delete : user:string -> revision:int -> unit;
  load : user:string -> Codec.entry list option;
  revision : user:string -> int;
  revisions : unit -> (string * int) list;
  users : unit -> string list;
  iter : (user:string -> revision:int -> Codec.entry list -> unit) -> unit;
  stats : unit -> Store.stats option;
  sync : unit -> unit;
  close : unit -> unit;
}

let memory () =
  (* user -> (revision, live entries or None for a tombstone) *)
  let tbl : (string, int * Codec.entry list option) Hashtbl.t =
    Hashtbl.create 64
  in
  let sorted pred =
    Hashtbl.fold (fun u v acc -> if pred v then u :: acc else acc) tbl []
    |> List.sort compare
  in
  {
    name = "memory";
    save =
      (fun ~user ~revision entries ->
        Hashtbl.replace tbl user (revision, Some entries));
    delete = (fun ~user ~revision -> Hashtbl.replace tbl user (revision, None));
    load =
      (fun ~user ->
        match Hashtbl.find_opt tbl user with
        | Some (_, entries) -> entries
        | None -> None);
    revision =
      (fun ~user ->
        match Hashtbl.find_opt tbl user with Some (r, _) -> r | None -> 0);
    revisions =
      (fun () ->
        Hashtbl.fold (fun u (r, _) acc -> (u, r) :: acc) tbl []
        |> List.sort compare);
    users = (fun () -> sorted (fun (_, e) -> e <> None));
    iter =
      (fun f ->
        List.iter
          (fun user ->
            match Hashtbl.find_opt tbl user with
            | Some (revision, Some entries) -> f ~user ~revision entries
            | _ -> ())
          (sorted (fun (_, e) -> e <> None)));
    stats = (fun () -> None);
    sync = ignore;
    close = ignore;
  }

let of_store s =
  {
    name = "disk";
    save = (fun ~user ~revision entries -> Store.save s ~user ~revision entries);
    delete = (fun ~user ~revision -> Store.delete s ~user ~revision);
    load = (fun ~user -> Store.load s ~user);
    revision = (fun ~user -> Store.revision s ~user);
    revisions = (fun () -> Store.revisions s);
    users = (fun () -> Store.users s);
    iter = (fun f -> Store.iter s f);
    stats = (fun () -> Some (Store.stats s));
    sync = (fun () -> Store.sync s);
    close = (fun () -> Store.close s);
  }

let disk ?config dirname = of_store (Store.open_ ?config dirname)

let of_replica r =
  {
    name = "replicated";
    save = (fun ~user ~revision entries -> Replica.save r ~user ~revision entries);
    delete = (fun ~user ~revision -> Replica.delete r ~user ~revision);
    load = (fun ~user -> Replica.load r ~user);
    revision = (fun ~user -> Replica.revision r ~user);
    revisions = (fun () -> Replica.revisions r);
    users = (fun () -> Replica.users r);
    iter = (fun f -> Replica.iter r f);
    stats = (fun () -> Some (Replica.stats r));
    sync = (fun () -> Replica.sync r);
    close = (fun () -> Replica.close r);
  }
