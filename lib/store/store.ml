module Chaos = Relal.Chaos
module Csv = Relal.Csv

type config = { segment_bytes : int; compact_segments : int; fsync : bool }

let default_config =
  { segment_bytes = 4 lsl 20; compact_segments = 4; fsync = true }

type error =
  | Torn_log of { file : string; detail : string }
  | Bad_crc of { file : string; detail : string }
  | Malformed of { file : string; detail : string }

exception Store_error of error

let error_to_string = function
  | Torn_log { file; detail } ->
      Printf.sprintf "torn log %s: %s" file detail
  | Bad_crc { file; detail } ->
      Printf.sprintf "bad checksum in %s: %s" file detail
  | Malformed { file; detail } ->
      Printf.sprintf "malformed store file %s: %s" file detail

let store_err e = raise (Store_error e)

(* Index entry: where the user's latest record lives.  [loc = None] is
   a tombstone — the user is deleted but the revision high-water mark
   must survive (compaction rewrites tombstones, never drops them). *)
type meta = {
  loc : (int * int) option;  (* frame (offset, full length) in [file] *)
  revision : int;
  file : string;
}

type t = {
  dirname : string;
  cfg : config;
  m : Mutex.t;
  index : (string, meta) Hashtbl.t;
  mutable wal : Wal.t;
  mutable wal_name : string;
  mutable sealed : (string * int) list;  (* (file, bytes), oldest first *)
  mutable seq : int;  (* last file sequence number handed out *)
  mutable closed : bool;
  mutable n_appends : int;
  mutable n_rotations : int;
  mutable n_compactions : int;
  mutable n_compact_failures : int;
  mutable n_torn : int;
}

let dir t = t.dirname

let manifest_name = "MANIFEST"
let manifest_tmp = "MANIFEST.tmp"
let wal_file seq = Printf.sprintf "wal-%06d.log" seq
let seg_file seq = Printf.sprintf "seg-%06d.dat" seq
let in_dir t name = Filename.concat t.dirname name

let is_store_file name =
  name = manifest_tmp
  || (String.length name >= 4
     && (String.sub name 0 4 = "wal-" || String.sub name 0 4 = "seg-"))

(* ----------------------------- manifest ----------------------------- *)

let manifest_text ~sealed ~wal =
  let b = Buffer.create 256 in
  Buffer.add_string b "perso-store 1\n";
  List.iter
    (fun (name, size) ->
      Buffer.add_string b (Printf.sprintf "segment %s %d\n" name size))
    sealed;
  Buffer.add_string b (Printf.sprintf "wal %s\n" wal);
  Buffer.contents b

let parse_manifest ~file text =
  let malformed detail = store_err (Malformed { file; detail }) in
  match String.split_on_char '\n' text |> List.filter (fun l -> l <> "") with
  | [] -> malformed "empty manifest"
  | header :: lines ->
      if header <> "perso-store 1" then
        malformed (Printf.sprintf "unknown header %S" header);
      let sealed = ref [] and wal = ref None in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          | [ "segment"; name; size ] -> (
              match int_of_string_opt size with
              | Some size -> sealed := (name, size) :: !sealed
              | None -> malformed (Printf.sprintf "bad segment line %S" line))
          | [ "wal"; name ] ->
              if !wal <> None then malformed "duplicate wal line";
              wal := Some name
          | _ -> malformed (Printf.sprintf "unparseable line %S" line))
        lines;
      let wal =
        match !wal with Some w -> w | None -> malformed "no wal line"
      in
      (List.rev !sealed, wal)

(* Manifest replacement is the commit point of rotation and compaction:
   tmp + fsync + atomic rename, the same discipline as [Csv.save_db_r].
   The deterministic fault plan can kill or fail it. *)
let write_manifest t ~sealed ~wal =
  let flip = ref None in
  (match Chaos.take_fault Chaos.Manifest_write with
  | None -> ()
  | Some (Chaos.Flip_byte frac) -> flip := Some frac
  | Some Chaos.Crash -> raise (Chaos.Crashed { point = Chaos.Manifest_write })
  | Some (Chaos.Torn_write frac) ->
      let text = manifest_text ~sealed ~wal in
      let keep =
        max 0 (min (String.length text - 1)
                 (int_of_float (frac *. float_of_int (String.length text))))
      in
      (try Csv.write_file_sync (in_dir t manifest_tmp) (String.sub text 0 keep)
       with _ -> ());
      raise (Chaos.Crashed { point = Chaos.Manifest_write })
  | Some (Chaos.Short_write _) | Some Chaos.Fsync_fail ->
      raise (Chaos.Injected { point = Chaos.Manifest_write; transient = true }));
  Chaos.point Chaos.Manifest_write;
  Csv.write_file_sync (in_dir t manifest_tmp) (manifest_text ~sealed ~wal);
  Sys.rename (in_dir t manifest_tmp) (in_dir t manifest_name);
  Csv.fsync_dir t.dirname;
  Option.iter
    (fun frac -> Chaos.flip_byte_in_file (in_dir t manifest_name) frac)
    !flip

(* ----------------------------- recovery ----------------------------- *)

let seq_of_name name =
  match int_of_string_opt (String.sub name 4 6) with
  | Some n -> n
  | None -> 0
  | exception Invalid_argument _ -> 0

let apply_record index ~file ~pos payload =
  match Codec.decode_record payload with
  | Error detail ->
      store_err
        (Malformed
           { file; detail = Printf.sprintf "record at %d: %s" pos detail })
  | Ok (Codec.Put { user; revision; _ }) ->
      Hashtbl.replace index user
        { loc = Some (pos, Wal.header_bytes + String.length payload);
          revision; file }
  | Ok (Codec.Delete { user; revision }) ->
      Hashtbl.replace index user { loc = None; revision; file }

let scan_apply index ~file data =
  let _, ending =
    Wal.scan_string data (fun ~pos payload ->
        apply_record index ~file ~pos payload)
  in
  ending

let replay_sealed ~dirname ~index (name, promised) =
  let path = Filename.concat dirname name in
  if not (Sys.file_exists path) then
    store_err (Torn_log { file = name; detail = "sealed segment missing" });
  let data = In_channel.with_open_bin path In_channel.input_all in
  if String.length data <> promised then
    store_err
      (Torn_log
         {
           file = name;
           detail =
             Printf.sprintf "%d bytes on disk, manifest says %d"
               (String.length data) promised;
         });
  match scan_apply index ~file:name data with
  | Wal.Clean -> ()
  | Wal.Torn { at; detail } ->
      store_err
        (Torn_log
           { file = name; detail = Printf.sprintf "at %d: %s" at detail })
  | Wal.Corrupt { at; detail } ->
      store_err
        (Bad_crc
           { file = name; detail = Printf.sprintf "at %d: %s" at detail })

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd len;
      Unix.fsync fd)

(* Returns the number of torn tails truncated (0 or 1). *)
let replay_wal ~dirname ~index name =
  let path = Filename.concat dirname name in
  if not (Sys.file_exists path) then
    (* Rotation creates the file before committing the manifest, so a
       named-but-missing WAL only happens when someone deleted it by
       hand; an empty active log is the correct recovered state. *)
    0
  else begin
    let data = In_channel.with_open_bin path In_channel.input_all in
    match scan_apply index ~file:name data with
    | Wal.Clean -> 0
    | Wal.Torn { at; detail = _ } ->
        (* The crash signature: an append died mid-frame.  Everything
           before [at] was acknowledged (or is replay-equivalent);
           nothing after ever was.  Truncate and count. *)
        truncate_file path at;
        1
    | Wal.Corrupt { at; detail } ->
        store_err
          (Bad_crc
             { file = name; detail = Printf.sprintf "at %d: %s" at detail })
  end

let remove_strays t ~keep =
  Array.iter
    (fun name ->
      if is_store_file name && not (List.mem name keep) then
        try Sys.remove (in_dir t name) with Sys_error _ -> ())
    (Sys.readdir t.dirname)

let fresh ?(config = default_config) dirname =
  let t =
    {
      dirname;
      cfg = config;
      m = Mutex.create ();
      index = Hashtbl.create 64;
      wal = Wal.open_append ~fsync:config.fsync
              (Filename.concat dirname (wal_file 1));
      wal_name = wal_file 1;
      sealed = [];
      seq = 1;
      closed = false;
      n_appends = 0;
      n_rotations = 0;
      n_compactions = 0;
      n_compact_failures = 0;
      n_torn = 0;
    }
  in
  write_manifest t ~sealed:[] ~wal:t.wal_name;
  t

let open_ ?(config = default_config) dirname =
  if not (Sys.file_exists dirname) then Sys.mkdir dirname 0o755;
  if not (Sys.is_directory dirname) then
    store_err
      (Malformed { file = dirname; detail = "store path is not a directory" });
  let manifest_path = Filename.concat dirname manifest_name in
  if not (Sys.file_exists manifest_path) then begin
    (* No manifest: either a fresh directory or a crash during init,
       before anything was acknowledged.  Sealed segments can only
       exist after a committed manifest, so their presence without one
       means the manifest was deleted — refuse to guess. *)
    let entries = Sys.readdir dirname in
    Array.iter
      (fun name ->
        if String.length name >= 4 && String.sub name 0 4 = "seg-" then
          store_err
            (Malformed
               {
                 file = manifest_name;
                 detail =
                   Printf.sprintf
                     "missing manifest but sealed segment %s present" name;
               }))
      entries;
    Array.iter
      (fun name ->
        if is_store_file name then
          try Sys.remove (Filename.concat dirname name) with Sys_error _ -> ())
      entries;
    fresh ~config dirname
  end
  else begin
    let text = In_channel.with_open_bin manifest_path In_channel.input_all in
    let sealed, wal_name = parse_manifest ~file:manifest_name text in
    let index = Hashtbl.create 64 in
    List.iter (replay_sealed ~dirname ~index) sealed;
    let torn = replay_wal ~dirname ~index wal_name in
    let t =
      {
        dirname;
        cfg = config;
        m = Mutex.create ();
        index;
        wal =
          Wal.open_append ~fsync:config.fsync
            (Filename.concat dirname wal_name);
        wal_name;
        sealed;
        seq =
          List.fold_left
            (fun acc (name, _) -> max acc (seq_of_name name))
            (seq_of_name wal_name) sealed;
        closed = false;
        n_appends = 0;
        n_rotations = 0;
        n_compactions = 0;
        n_compact_failures = 0;
        n_torn = torn;
      }
    in
    remove_strays t ~keep:(wal_name :: List.map fst sealed);
    t
  end

let open_r ?config dirname =
  match open_ ?config dirname with
  | t -> Ok t
  | exception Store_error e -> Error e

(* -------------------- file-set introspection -------------------- *)

(* The scrubber and the replica tier work on the committed file set
   without opening a handle: the manifest names exactly the files whose
   bytes matter (plus the active WAL, whose tail may legitimately be
   torn). *)

let manifest_file = manifest_name

let read_manifest dirname =
  let path = Filename.concat dirname manifest_name in
  if not (Sys.file_exists path) then None
  else
    Some
      (parse_manifest ~file:manifest_name
         (In_channel.with_open_bin path In_channel.input_all))

let check_open t = if t.closed then invalid_arg "Store: handle is closed"

(* ----------------------------- rotation ----------------------------- *)

(* Disk first, memory after: the new WAL file is created and the
   manifest committed before any in-memory state changes, so a failure
   at any point leaves the handle consistent with the old manifest. *)
let rotate t =
  Wal.sync t.wal;
  let new_seq = t.seq + 1 in
  let new_name = wal_file new_seq in
  let new_wal = Wal.open_append ~fsync:t.cfg.fsync (in_dir t new_name) in
  let sealed' = t.sealed @ [ (t.wal_name, Wal.size t.wal) ] in
  (try write_manifest t ~sealed:sealed' ~wal:new_name
   with e ->
     (match e with
     | Chaos.Crashed _ -> ()
     | _ ->
         Wal.close new_wal;
         (try Sys.remove (in_dir t new_name) with Sys_error _ -> ()));
     raise e);
  let old = t.wal in
  t.sealed <- sealed';
  t.wal <- new_wal;
  t.wal_name <- new_name;
  t.seq <- new_seq;
  t.n_rotations <- t.n_rotations + 1;
  Wal.close old

(* ---------------------------- compaction ---------------------------- *)

(* Rewrite the latest record of every user whose record lives in a
   sealed segment into one fresh segment — tombstones included, so
   revision high-water marks survive — then commit by manifest swap and
   delete the old segments.  Records whose latest version is in the
   active WAL are left alone: the WAL replays after sealed segments, so
   it wins on reopen regardless. *)
let compact t =
  if t.sealed <> [] then begin
    let sealed_names = List.map fst t.sealed in
    let victims =
      Hashtbl.fold
        (fun user m acc ->
          if List.mem m.file sealed_names then (user, m) :: acc else acc)
        t.index []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let new_seq = t.seq + 1 in
    let seg_name = seg_file new_seq in
    let seg_path = in_dir t seg_name in
    let out = Wal.open_append ~fsync:false seg_path in
    let moved = ref [] in
    (try
       List.iter
         (fun (user, m) ->
           let payload =
             match m.loc with
             | Some (off, len) -> (
                 match
                   Wal.read_frame ~path:(in_dir t m.file) ~off ~len
                 with
                 | Ok p -> p
                 | Error detail ->
                     store_err (Bad_crc { file = m.file; detail }))
             | None ->
                 Codec.encode_record
                   (Codec.Delete { user; revision = m.revision })
           in
           let off = Wal.append ~point:Chaos.Compact_write out payload in
           let loc =
             match m.loc with
             | Some _ -> Some (off, Wal.header_bytes + String.length payload)
             | None -> None
           in
           moved := (user, { loc; revision = m.revision; file = seg_name })
                    :: !moved)
         victims;
       Wal.sync out;
       (match Chaos.take_fault Chaos.Compact_rename with
       | None -> ()
       | Some (Chaos.Flip_byte frac) ->
           (* Latent sealed-segment corruption: the compaction commits,
              but the fresh segment carries a flipped byte. *)
           Chaos.flip_byte_in_file seg_path frac
       | Some Chaos.Crash | Some (Chaos.Torn_write _) ->
           raise (Chaos.Crashed { point = Chaos.Compact_rename })
       | Some (Chaos.Short_write _) | Some Chaos.Fsync_fail ->
           raise
             (Chaos.Injected { point = Chaos.Compact_rename; transient = true }));
       Chaos.point Chaos.Compact_rename;
       write_manifest t
         ~sealed:[ (seg_name, Wal.size out) ]
         ~wal:t.wal_name
     with e ->
       (try Wal.close out with Unix.Unix_error _ -> ());
       (match e with
       | Chaos.Crashed _ -> ()
       | _ -> ( try Sys.remove seg_path with Sys_error _ -> ()));
       raise e);
    (* Committed: swap in-memory state and drop the old segments. *)
    let seg_size = Wal.size out in
    Wal.close out;
    List.iter
      (fun (name, _) ->
        try Sys.remove (in_dir t name) with Sys_error _ -> ())
      t.sealed;
    t.sealed <- [ (seg_name, seg_size) ];
    t.seq <- new_seq;
    List.iter (fun (user, m) -> Hashtbl.replace t.index user m) !moved;
    t.n_compactions <- t.n_compactions + 1
  end

(* Auto-compaction rides on an already-acknowledged append, so a
   transient injected fault must not fail the save it rode on: note it
   and try again after the next rotation.  Simulated crashes and real
   corruption still propagate. *)
let maybe_compact t =
  if List.length t.sealed >= t.cfg.compact_segments then
    try compact t
    with Chaos.Injected _ ->
      t.n_compact_failures <- t.n_compact_failures + 1

(* ------------------------------ writes ------------------------------ *)

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let sealed_segments t = locked t (fun () -> t.sealed)
let active_wal t = locked t (fun () -> (t.wal_name, Wal.size t.wal))

let append_record t record =
  check_open t;
  if Wal.size t.wal >= t.cfg.segment_bytes then rotate t;
  let payload = Codec.encode_record record in
  let off = Wal.append t.wal payload in
  t.n_appends <- t.n_appends + 1;
  let user = Codec.record_user record in
  let revision = Codec.record_revision record in
  let loc =
    match record with
    | Codec.Put _ -> Some (off, Wal.header_bytes + String.length payload)
    | Codec.Delete _ -> None
  in
  Hashtbl.replace t.index user { loc; revision; file = t.wal_name };
  maybe_compact t

let save t ~user ~revision entries =
  locked t (fun () ->
      append_record t (Codec.Put { user; revision; entries }))

let delete t ~user ~revision =
  locked t (fun () -> append_record t (Codec.Delete { user; revision }))

(* ------------------------------- reads ------------------------------- *)

let load_locked t ~user =
  match Hashtbl.find_opt t.index user with
  | None | Some { loc = None; _ } -> None
  | Some { loc = Some (off, len); file; _ } -> (
      match Wal.read_frame ~path:(in_dir t file) ~off ~len with
      | Error detail -> store_err (Bad_crc { file; detail })
      | Ok payload -> (
          match Codec.decode_record payload with
          | Ok (Codec.Put { entries; _ }) -> Some entries
          | Ok (Codec.Delete _) ->
              store_err
                (Malformed
                   { file; detail = "tombstone where a profile was indexed" })
          | Error detail -> store_err (Malformed { file; detail })))

let load t ~user =
  locked t (fun () ->
      check_open t;
      load_locked t ~user)

let revision t ~user =
  locked t (fun () ->
      match Hashtbl.find_opt t.index user with
      | None -> 0
      | Some m -> m.revision)

let sorted_keys t pred =
  Hashtbl.fold (fun u m acc -> if pred m then u :: acc else acc) t.index []
  |> List.sort compare

let revisions t =
  locked t (fun () ->
      Hashtbl.fold (fun u m acc -> (u, m.revision) :: acc) t.index []
      |> List.sort compare)

let users t = locked t (fun () -> sorted_keys t (fun m -> m.loc <> None))

let iter t f =
  locked t (fun () ->
      check_open t;
      List.iter
        (fun user ->
          match Hashtbl.find_opt t.index user with
          | Some { loc = Some _; revision; _ } -> (
              match load_locked t ~user with
              | Some entries -> f ~user ~revision entries
              | None -> ())
          | _ -> ())
        (sorted_keys t (fun m -> m.loc <> None)))

(* ------------------------------- admin ------------------------------- *)

type stats = {
  appends : int;
  rotations : int;
  compactions : int;
  compact_failures : int;
  torn_truncated : int;
  segments : int;
  live_users : int;
  wal_bytes : int;
}

let stats t =
  locked t (fun () ->
      {
        appends = t.n_appends;
        rotations = t.n_rotations;
        compactions = t.n_compactions;
        compact_failures = t.n_compact_failures;
        torn_truncated = t.n_torn;
        segments = List.length t.sealed;
        live_users =
          Hashtbl.fold
            (fun _ m acc -> if m.loc <> None then acc + 1 else acc)
            t.index 0;
        wal_bytes = Wal.size t.wal;
      })

let compact_now t =
  locked t (fun () ->
      check_open t;
      if Wal.size t.wal > 0 then rotate t;
      compact t)

let sync t = locked t (fun () -> if not t.closed then Wal.sync t.wal)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        Wal.sync t.wal;
        Wal.close t.wal;
        t.closed <- true
      end)

let abandon t =
  locked t (fun () ->
      if not t.closed then begin
        (try Wal.close t.wal with Unix.Unix_error _ -> ());
        t.closed <- true
      end)
