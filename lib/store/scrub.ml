module Chaos = Relal.Chaos
module Csv = Relal.Csv

type file_status =
  | File_ok
  | File_torn_tail of int
  | File_damaged of Store.error

type file_report = {
  file : string;
  size : int;
  crc : int;
  records : int;
  status : file_status;
}

type damage = { file : string; error : Store.error; salvageable : int }

type report = { dir : string; files : file_report list; damaged : damage list }

let status_name = function
  | File_ok -> "ok"
  | File_torn_tail at -> Printf.sprintf "torn-tail@%d" at
  | File_damaged e -> Store.error_to_string e

(* Whole-file CRC by chunked reads — the per-file rollup entry the
   replica divergence check compares.  Streamed so a scrub never holds
   a segment as one string. *)
let crc_of_file path =
  In_channel.with_open_bin path (fun ic ->
      let buf = Bytes.create 65536 in
      let rec go state size =
        match In_channel.input ic buf 0 (Bytes.length buf) with
        | 0 -> (size, Crc32.finish state)
        | n ->
            go
              (Crc32.update state (Bytes.unsafe_to_string buf) ~pos:0 ~len:n)
              (size + n)
      in
      go Crc32.init 0)

let salvageable path =
  if not (Sys.file_exists path) then 0
  else begin
    let n = ref 0 in
    (try ignore (Wal.scan_file path (fun ~pos:_ _ -> incr n))
     with Sys_error _ -> ());
    !n
  end

(* One file under the scrubber's lens.  [promised = Some bytes] for
   sealed segments (the manifest's size is part of the contract);
   [None] for the active WAL, whose torn tail is a legitimate crash
   signature rather than damage. *)
let scan_file ~dir ~promised name =
  let path = Filename.concat dir name in
  (match Chaos.take_fault Chaos.Scrub_read with
  | None -> ()
  | Some (Chaos.Flip_byte frac) ->
      (* Latent disk corruption surfacing exactly when the scrubber
         looks: flip first, then verify — the scrub must catch it. *)
      Chaos.flip_byte_in_file path frac
  | Some Chaos.Crash -> raise (Chaos.Crashed { point = Chaos.Scrub_read })
  | Some (Chaos.Torn_write _ | Chaos.Short_write _) | Some Chaos.Fsync_fail ->
      raise (Chaos.Injected { point = Chaos.Scrub_read; transient = true }));
  Chaos.point Chaos.Scrub_read;
  if not (Sys.file_exists path) then
    {
      file = name;
      size = 0;
      crc = 0;
      records = 0;
      status =
        File_damaged (Store.Torn_log { file = name; detail = "file missing" });
    }
  else begin
    let data = In_channel.with_open_bin path In_channel.input_all in
    let size = String.length data in
    let crc = Crc32.string data in
    let records = ref 0 in
    let _, ending = Wal.scan_string data (fun ~pos:_ _ -> incr records) in
    let status =
      match promised with
      | Some p when size <> p ->
          File_damaged
            (Store.Torn_log
               {
                 file = name;
                 detail =
                   Printf.sprintf "%d bytes on disk, manifest says %d" size p;
               })
      | _ -> (
          match ending with
          | Wal.Clean -> File_ok
          | Wal.Torn { at; detail } ->
              if promised = None then File_torn_tail at
              else
                File_damaged
                  (Store.Torn_log
                     {
                       file = name;
                       detail = Printf.sprintf "at %d: %s" at detail;
                     })
          | Wal.Corrupt { at; detail } ->
              File_damaged
                (Store.Bad_crc
                   {
                     file = name;
                     detail = Printf.sprintf "at %d: %s" at detail;
                   }))
    in
    { file = name; size; crc; records = !records; status }
  end

let scan_dir dir =
  match Store.read_manifest dir with
  | None -> { dir; files = []; damaged = [] }
  | Some (sealed, wal) ->
      let files =
        List.map (fun (n, sz) -> scan_file ~dir ~promised:(Some sz) n) sealed
        @
        if Sys.file_exists (Filename.concat dir wal) then
          [ scan_file ~dir ~promised:None wal ]
        else []
      in
      let damaged =
        List.filter_map
          (fun fr ->
            match fr.status with
            | File_damaged e ->
                Some { file = fr.file; error = e; salvageable = fr.records }
            | File_ok | File_torn_tail _ -> None)
          files
      in
      { dir; files; damaged }

let rollup dir =
  match Store.read_manifest dir with
  | None -> []
  | Some (sealed, wal) ->
      List.filter_map
        (fun name ->
          let path = Filename.concat dir name in
          if Sys.file_exists path then
            let size, crc = crc_of_file path in
            Some (name, size, crc)
          else None)
        (List.map fst sealed @ [ wal ])

(* ------------------------- repair primitives ------------------------- *)

let quarantine_dirname = "quarantine"

let quarantine ~dir ~file =
  let src = Filename.concat dir file in
  if Sys.file_exists src then begin
    let qdir = Filename.concat dir quarantine_dirname in
    if not (Sys.file_exists qdir) then Sys.mkdir qdir 0o755;
    let rec target k =
      let name = if k = 0 then file else Printf.sprintf "%s.%d" file k in
      let p = Filename.concat qdir name in
      if Sys.file_exists p then target (k + 1) else p
    in
    Sys.rename src (target 0);
    Csv.fsync_dir dir
  end

let clear_store_files dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    (* Manifest first: a crash mid-clear must not leave a manifest
       naming files that are already gone. *)
    (try Sys.remove (Filename.concat dir Store.manifest_file)
     with Sys_error _ -> ());
    Array.iter
      (fun name ->
        if Store.is_store_file name then
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      (Sys.readdir dir)
  end

let copy_file ~src ~dst = Csv.write_file_sync dst (In_channel.with_open_bin src In_channel.input_all)

let clone ~src ~dst =
  if not (Sys.file_exists dst) then Sys.mkdir dst 0o755;
  clear_store_files dst;
  (match Store.read_manifest src with
  | None -> ()
  | Some (sealed, wal) ->
      let copy name =
        let from = Filename.concat src name in
        if Sys.file_exists from then
          copy_file ~src:from ~dst:(Filename.concat dst name)
      in
      List.iter copy (List.map fst sealed);
      copy wal;
      (* The manifest lands last — the clone's commit point, mirroring
         rotation and compaction. *)
      copy Store.manifest_file);
  Csv.fsync_dir dst
