module Chaos = Relal.Chaos
module Csv = Relal.Csv

type rstats = {
  failovers : int;
  salvaged : int;
  quarantined : int;
  catchups : int;
  ship_errors : int;
}

type member = {
  dir : string;
  mutable store : Store.t option;  (* None = offline (damage unrepaired) *)
}

type t = {
  root : string;
  cfg : Store.config;
  n : int;
  m : Mutex.t;
  members : member array;
  mutable primary : int;
  mutable closed : bool;
  mutable n_failovers : int;
  mutable n_salvaged : int;
  mutable n_quarantined : int;
  mutable n_catchups : int;
  mutable n_ship_errors : int;
  mutable n_torn : int;  (* torn WAL tails truncated, summed over member opens *)
}

let root t = t.root
let replicas t = t.n
let primary_index t = t.primary

let member_dir root i = Filename.concat root (Printf.sprintf "r%d" i)
let replstate_name = "REPLSTATE"

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let check_open t = if t.closed then invalid_arg "Replica: handle is closed"

let error_file = function
  | Store.Torn_log { file; _ } | Store.Bad_crc { file; _ }
  | Store.Malformed { file; _ } ->
      Filename.basename file

(* Freshness: the sum of every user's revision high-water mark.  Each
   mark is monotone, so a member that missed any shipped record sums
   strictly lower — and unlike the REPLSTATE watermarks this is derived
   from recovered bytes, never from bookkeeping that could be stale. *)
let watermark s =
  List.fold_left (fun acc (_, r) -> acc + r) 0 (Store.revisions s)

(* ----------------------------- REPLSTATE ----------------------------- *)

(* Pins the replica count (placement of quarantine/catch-up decisions
   assumes a stable member set) and records the last promotion plus
   per-member shipped watermarks for operators.  Promotion decisions
   re-derive freshness from the stores; only the count and primary
   index are load-bearing here. *)

let replstate_text t =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "perso-replicas %d\n" t.n);
  Buffer.add_string b (Printf.sprintf "primary %d\n" t.primary);
  Array.iteri
    (fun i mem ->
      let w = match mem.store with Some s -> watermark s | None -> -1 in
      Buffer.add_string b (Printf.sprintf "shipped %d %d\n" i w))
    t.members;
  Buffer.contents b

let write_replstate t =
  let path = Filename.concat t.root replstate_name in
  try
    Csv.write_file_sync (path ^ ".tmp") (replstate_text t);
    Sys.rename (path ^ ".tmp") path;
    Csv.fsync_dir t.root
  with Sys_error _ | Unix.Unix_error _ -> ()

let read_replstate root =
  let path = Filename.concat root replstate_name in
  if not (Sys.file_exists path) then None
  else begin
    let malformed detail =
      raise (Store.Store_error (Store.Malformed { file = path; detail }))
    in
    let lines =
      In_channel.with_open_bin path In_channel.input_all
      |> String.split_on_char '\n'
      |> List.filter (fun l -> String.trim l <> "")
    in
    match lines with
    | header :: rest -> (
        match String.split_on_char ' ' header with
        | [ "perso-replicas"; n ] -> (
            match int_of_string_opt n with
            | Some n when n >= 1 ->
                let primary = ref 0 in
                List.iter
                  (fun line ->
                    match String.split_on_char ' ' line with
                    | [ "primary"; p ] -> (
                        match int_of_string_opt p with
                        | Some p -> primary := p
                        | None -> malformed ("bad primary line: " ^ line))
                    | "shipped" :: _ -> ()
                    | _ -> malformed ("unparseable line: " ^ line))
                  rest;
                Some (n, !primary)
            | _ -> malformed ("bad replica count: " ^ header))
        | _ -> malformed ("unknown header: " ^ header))
    | [] -> malformed "empty REPLSTATE"
  end

(* Pre-replication layouts put the store files directly in the root.
   Adopt them as member 0: data files first, the manifest last, so a
   crash mid-migration leaves the root's manifest in place and the next
   open resumes the move. *)
let migrate_legacy root =
  if Sys.file_exists (Filename.concat root Store.manifest_file) then begin
    let r0 = member_dir root 0 in
    if not (Sys.file_exists r0) then Sys.mkdir r0 0o755;
    let move name =
      let src = Filename.concat root name in
      if Sys.file_exists src then Sys.rename src (Filename.concat r0 name)
    in
    Array.iter
      (fun name -> if Store.is_store_file name then move name)
      (Sys.readdir root);
    move Store.manifest_file;
    Csv.fsync_dir r0;
    Csv.fsync_dir root
  end

(* ------------------------- repair primitives ------------------------- *)

let abandon_member mem =
  (match mem.store with
  | Some s -> ( try Store.abandon s with Unix.Unix_error _ -> ())
  | None -> ());
  mem.store <- None

let reopen_member t mem =
  match Store.open_r ~config:t.cfg mem.dir with
  | Ok s ->
      t.n_torn <- t.n_torn + (Store.stats s).Store.torn_truncated;
      mem.store <- Some s
  | Error _ -> mem.store <- None

(* Rebuild a member as a byte-identical clone of the current primary.
   A failure leaves it offline — the next open retries the repair. *)
let clone_from_primary t i =
  let mem = t.members.(i) in
  abandon_member mem;
  (try Scrub.clone ~src:t.members.(t.primary).dir ~dst:mem.dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  reopen_member t mem

(* Quarantine-and-salvage one damaged member, then rebuild it from the
   primary: credit the records its valid prefix still decodes, move the
   damaged file out of the way (preserved, never deleted), clone. *)
let repair_damaged t i error =
  let mem = t.members.(i) in
  abandon_member mem;
  let file = error_file error in
  t.n_salvaged <-
    t.n_salvaged + Scrub.salvageable (Filename.concat mem.dir file);
  Scrub.quarantine ~dir:mem.dir ~file;
  t.n_quarantined <- t.n_quarantined + 1;
  clone_from_primary t i;
  if mem.store <> None then t.n_catchups <- t.n_catchups + 1

(* ------------------------------ promotion ---------------------------- *)

let promote_point () =
  (match Chaos.take_fault Chaos.Promote with
  | None | Some (Chaos.Flip_byte _) -> ()
  | Some Chaos.Crash | Some (Chaos.Torn_write _) ->
      raise (Chaos.Crashed { point = Chaos.Promote })
  | Some (Chaos.Short_write _) | Some Chaos.Fsync_fail ->
      raise (Chaos.Injected { point = Chaos.Promote; transient = true }));
  Chaos.point Chaos.Promote

(* The freshest healthy member other than [except]: highest watermark,
   ties broken by lowest index — deterministic, so every replica of the
   decision (re-runs, the sweep's oracle) promotes identically. *)
let member_watermark t i =
  match t.members.(i).store with Some s -> watermark s | None -> -1

let freshest t ~except =
  let best = ref None in
  Array.iteri
    (fun i mem ->
      if i <> except then
        match mem.store with
        | None -> ()
        | Some s -> (
            let w = watermark s in
            match !best with
            | Some (_, w') when w' >= w -> ()
            | _ -> best := Some (i, w)))
    t.members;
  Option.map fst !best

let promote t ~damaged =
  promote_point ();
  match freshest t ~except:t.primary with
  | None -> (
      (* No replica has a clean copy: surface the damage as the same
         typed fatal error a single-copy store raises. *)
      match damaged with
      | Some e -> raise (Store.Store_error e)
      | None ->
          raise
            (Store.Store_error
               (Store.Malformed
                  {
                    file = replstate_name;
                    detail = "no healthy replica to promote";
                  })))
  | Some i ->
      let old = t.primary in
      t.primary <- i;
      t.n_failovers <- t.n_failovers + 1;
      (match damaged with
      | Some e -> repair_damaged t old e
      | None -> clone_from_primary t old);
      write_replstate t

(* Run a read against the primary, failing over on typed damage until
   it succeeds or every member has been tried.  Bounded: promotion
   never returns to the member it just demoted within one operation's
   attempts, and [t.n] attempts exhaust the set. *)
let with_failover t f =
  let rec go attempts =
    match t.members.(t.primary).store with
    | None ->
        if attempts = 0 then
          raise
            (Store.Store_error
               (Store.Malformed
                  { file = replstate_name; detail = "no healthy replica" }))
        else begin
          promote t ~damaged:None;
          go (attempts - 1)
        end
    | Some s -> (
        match f s with
        | v -> v
        | exception Store.Store_error e ->
            if t.n = 1 || attempts = 0 then raise (Store.Store_error e)
            else begin
              promote t ~damaged:(Some e);
              go (attempts - 1)
            end)
  in
  go t.n

(* -------------------------------- open -------------------------------- *)

let open_ ?(config = Store.default_config) ?replicas root =
  (match replicas with
  | Some n when n < 1 -> invalid_arg "Replica.open_: replicas must be >= 1"
  | _ -> ());
  if not (Sys.file_exists root) then Sys.mkdir root 0o755;
  if not (Sys.is_directory root) then
    raise
      (Store.Store_error
         (Store.Malformed
            { file = root; detail = "replica root is not a directory" }));
  migrate_legacy root;
  let stored = read_replstate root in
  let replicas =
    match (replicas, stored) with
    | Some n, Some (sn, _) when sn <> n ->
        raise
          (Store.Store_error
             (Store.Malformed
                {
                  file = Filename.concat root replstate_name;
                  detail =
                    Printf.sprintf
                      "store was created with %d replicas; restart with \
                       --replicas %d"
                      sn sn;
                }))
    | Some n, _ -> n
    | None, Some (sn, _) -> sn
    | None, None -> 1
  in
  let primary0 =
    match stored with
    | Some (_, p) when p >= 0 && p < replicas -> p
    | _ -> 0
  in
  let t =
    {
      root;
      cfg = config;
      n = replicas;
      m = Mutex.create ();
      members =
        Array.init replicas (fun i ->
            { dir = member_dir root i; store = None });
      primary = primary0;
      closed = false;
      n_failovers = 0;
      n_salvaged = 0;
      n_quarantined = 0;
      n_catchups = 0;
      n_ship_errors = 0;
      n_torn = 0;
    }
  in
  let opens =
    Array.map (fun mem -> Store.open_r ~config:t.cfg mem.dir) t.members
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok s ->
          t.n_torn <- t.n_torn + (Store.stats s).Store.torn_truncated;
          t.members.(i).store <- Some s
      | Error _ -> ())
    opens;
  if Array.for_all (fun mem -> mem.store = None) t.members then
    (* Every copy is damaged: no salvage donor exists, so recovery
       surfaces exactly what a single-copy store would have raised —
       the primary's typed error. *)
    raise
      (Store.Store_error
         (match opens.(primary0) with Error e -> e | Ok _ -> assert false));
  (* Automatic failover at open: a damaged primary hands off to the
     freshest healthy member before any repair clones from it.  So does
     a primary that recovered strictly {e behind} a follower — latent
     corruption in its WAL tail truncates like a crash signature, so the
     member opens fine but acknowledged records now live only on the
     freshest copy. *)
  (match (t.members.(t.primary).store, freshest t ~except:(-1)) with
  | None, Some i ->
      promote_point ();
      t.primary <- i;
      t.n_failovers <- t.n_failovers + 1
  | Some ps, Some i when i <> t.primary && watermark ps < member_watermark t i ->
      promote_point ();
      t.primary <- i;
      t.n_failovers <- t.n_failovers + 1
  | _, _ -> ());
  (* Scrub-and-salvage every damaged member from the healthy primary. *)
  Array.iteri
    (fun i r ->
      match r with
      | Ok _ -> ()
      | Error e -> if i <> t.primary then repair_damaged t i e)
    opens;
  (* Divergence check: per-file (name, size, crc) rollups must agree
     with the primary's; a follower that restarted behind (or carries
     latent damage the manifest sizes cannot see) is caught up by a
     deterministic clone. *)
  let primary_rollup = Scrub.rollup t.members.(t.primary).dir in
  Array.iteri
    (fun i mem ->
      if i <> t.primary && mem.store <> None then
        let r = try Scrub.rollup mem.dir with Store.Store_error _ -> [] in
        if r <> primary_rollup then begin
          clone_from_primary t i;
          if mem.store <> None then t.n_catchups <- t.n_catchups + 1
        end)
    t.members;
  write_replstate t;
  t

let open_r ?config ?replicas root =
  match open_ ?config ?replicas root with
  | t -> Ok t
  | exception Store.Store_error e -> Error e

(* ------------------------------- writes ------------------------------- *)

let apply s = function
  | Codec.Put { user; revision; entries } -> Store.save s ~user ~revision entries
  | Codec.Delete { user; revision } -> Store.delete s ~user ~revision

(* Primary first — its fsynced append is the acknowledgement — then
   ship the same record to every follower.  Follower failures never
   fail an acknowledged save: the member is marked behind and caught up
   by a clone before the call returns (transient faults), or left for
   recovery's divergence check (simulated crashes). *)
let mutate t record =
  locked t @@ fun () ->
  check_open t;
  if t.n > 1 then Chaos.point Chaos.Ship_append;
  (match t.members.(t.primary).store with
  | None -> with_failover t (fun _ -> ())
  | Some _ -> ());
  (match t.members.(t.primary).store with
  | Some s -> apply s record
  | None -> assert false);
  if t.n > 1 then begin
    let behind = ref [] in
    Array.iteri
      (fun i mem ->
        if i <> t.primary then
          match mem.store with
          | None -> behind := i :: !behind
          | Some s -> (
              match Chaos.take_fault Chaos.Ship_append with
              | Some Chaos.Crash | Some (Chaos.Torn_write _) ->
                  raise (Chaos.Crashed { point = Chaos.Ship_append })
              | Some (Chaos.Short_write _) | Some Chaos.Fsync_fail ->
                  t.n_ship_errors <- t.n_ship_errors + 1;
                  behind := i :: !behind
              | Some (Chaos.Flip_byte frac) ->
                  (* The ship lands, then latent corruption hits the
                     follower's WAL — for the divergence check or a
                     later failover to find. *)
                  apply s record;
                  let wal, _ = Store.active_wal s in
                  Chaos.flip_byte_in_file (Filename.concat mem.dir wal) frac
              | None -> (
                  match apply s record with
                  | () -> ()
                  | exception (Chaos.Crashed _ as e) -> raise e
                  | exception _ ->
                      t.n_ship_errors <- t.n_ship_errors + 1;
                      behind := i :: !behind)))
      t.members;
    List.iter
      (fun i ->
        clone_from_primary t i;
        if t.members.(i).store <> None then
          t.n_catchups <- t.n_catchups + 1)
      (List.rev !behind)
  end

let save t ~user ~revision entries =
  mutate t (Codec.Put { user; revision; entries })

let delete t ~user ~revision = mutate t (Codec.Delete { user; revision })

(* -------------------------------- reads ------------------------------- *)

let load t ~user =
  locked t (fun () ->
      check_open t;
      with_failover t (fun s -> Store.load s ~user))

let revision t ~user =
  locked t (fun () ->
      check_open t;
      with_failover t (fun s -> Store.revision s ~user))

let revisions t =
  locked t (fun () ->
      check_open t;
      with_failover t (fun s -> Store.revisions s))

let users t =
  locked t (fun () ->
      check_open t;
      with_failover t (fun s -> Store.users s))

let iter t f =
  locked t (fun () ->
      check_open t;
      with_failover t (fun s -> Store.iter s f))

(* ------------------------------- admin -------------------------------- *)

let stats t =
  locked t (fun () ->
      let base =
        with_failover t (fun s -> Store.stats s)
      in
      { base with Store.torn_truncated = t.n_torn })

let rstats t =
  locked t (fun () ->
      {
        failovers = t.n_failovers;
        salvaged = t.n_salvaged;
        quarantined = t.n_quarantined;
        catchups = t.n_catchups;
        ship_errors = t.n_ship_errors;
      })

let scrub_now t =
  locked t @@ fun () ->
  check_open t;
  let reports = Array.map (fun mem -> Scrub.scan_dir mem.dir) t.members in
  let damaged i = reports.(i).Scrub.damaged <> [] in
  let clean_exists =
    Array.exists
      (fun i -> t.members.(i).store <> None && not (damaged i))
      (Array.init t.n Fun.id)
  in
  (if not clean_exists then begin
     (* No clean copy anywhere: the typed fatal error, as ever. *)
     match
       Array.find_opt (fun i -> damaged i) (Array.init t.n Fun.id)
     with
     | Some i -> raise (Store.Store_error (List.hd reports.(i).Scrub.damaged).Scrub.error)
     | None -> ()
   end
   else begin
     (* Failover away from a damaged primary before repairs clone. *)
     if damaged t.primary || t.members.(t.primary).store = None then begin
       promote_point ();
       (match
          ( freshest t ~except:t.primary,
            Array.find_opt
              (fun i ->
                i <> t.primary && t.members.(i).store <> None && not (damaged i))
              (Array.init t.n Fun.id) )
        with
       | _, Some i | Some i, None -> t.primary <- i
       | None, None -> assert false);
       t.n_failovers <- t.n_failovers + 1
     end;
     Array.iteri
       (fun i mem ->
         if i <> t.primary then
           if damaged i then
             repair_damaged t i (List.hd reports.(i).Scrub.damaged).Scrub.error
           else if mem.store = None then begin
             clone_from_primary t i;
             if mem.store <> None then t.n_catchups <- t.n_catchups + 1
           end)
       t.members;
     write_replstate t
   end);
  Array.to_list reports

let compact_now t =
  locked t (fun () ->
      check_open t;
      Array.iter
        (fun mem ->
          match mem.store with Some s -> Store.compact_now s | None -> ())
        t.members)

let sync t =
  locked t (fun () ->
      Array.iter
        (fun mem -> match mem.store with Some s -> Store.sync s | None -> ())
        t.members)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        write_replstate t;
        Array.iter
          (fun mem ->
            match mem.store with Some s -> Store.close s | None -> ())
          t.members;
        t.closed <- true
      end)

let abandon t =
  locked t (fun () ->
      if not t.closed then begin
        Array.iter abandon_member t.members;
        t.closed <- true
      end)
