(** CRC-framed append-only log files.

    Frame layout: [[u32le payload-length][u32le crc32(payload)][payload]].
    Appends are write-then-fsync; a failed append (I/O error, injected
    fault) truncates the file back to its pre-append size so an
    unacknowledged record never survives — except under a simulated
    {!Relal.Chaos.Crashed} kill, which deliberately leaves whatever
    prefix hit the disk for recovery to deal with.

    {!scan} classifies the tail of a log precisely: [Torn] means the
    last frame is incomplete (header or payload cut short) — the
    signature of a crash mid-append, safe to truncate; [Corrupt] means a
    structurally complete frame whose checksum or length field is wrong
    — data damage that recovery must surface, never silently drop. *)

type t
(** An open append handle. *)

val header_bytes : int
(** Frame header size (8). *)

val frame : string -> string
(** The on-disk framing of a payload. *)

val open_append : ?fsync:bool -> string -> t
(** Open (creating if absent) for appends at the current end of file.
    [fsync] (default true) controls whether {!append} syncs each frame;
    sealed-segment writers turn it off and {!sync} once at the end. *)

val path : t -> string

val size : t -> int
(** Bytes of acknowledged frames (the pre-append offset of the next
    frame). *)

val append : ?point:Relal.Chaos.point -> t -> string -> int
(** Append one framed payload; returns the frame's starting offset.
    Crosses the probabilistic chaos hook and consults the deterministic
    fault plan at [point] (default {!Relal.Chaos.Wal_append}):
    [Torn_write] writes a strict prefix and raises [Crashed];
    [Short_write]/[Fsync_fail] roll the file back and raise a transient
    [Injected]; [Crash] raises [Crashed] before writing.  On any
    failure other than [Crashed] the file is truncated back to
    {!size}. *)

val sync : t -> unit
val close : t -> unit

(** {1 Reading} *)

type scan_end =
  | Clean
  | Torn of { at : int; detail : string }
      (** incomplete final frame starting at [at] — truncate to [at] *)
  | Corrupt of { at : int; detail : string }
      (** complete frame with bad CRC or absurd length at [at] *)

val scan_string : string -> (pos:int -> string -> unit) -> int * scan_end
(** Walk frames in [data], calling the callback with each valid
    payload and its frame offset; returns the byte length of the valid
    prefix and how the data ends. *)

val scan_file : string -> (pos:int -> string -> unit) -> int * scan_end
(** {!scan_string} over a whole file. Unix/Sys errors propagate. *)

val read_frame : path:string -> off:int -> len:int -> (string, string) result
(** Re-read one frame (full frame length [len] at [off]) and verify its
    header and CRC; [Ok payload] or [Error detail].  Used by point
    lookups and compaction, so silent disk corruption is caught on every
    read path, not just at recovery. *)
