(** Binary codec for profile-store records.

    Combinator style after [persistent.ml]'s table/decode/bind records
    (SNIPPETS.md): a codec is a pair of an encoder into a [Buffer.t] and
    a decoder over a cursor, composed bottom-up from fixed primitives —
    LEB128 varints for non-negative integers, IEEE-754 bits
    little-endian for degrees (bit-exact round trips, no text
    formatting), and length-prefixed bytes for strings.  The wire unit
    is {!record}: a [Put] carrying a user's full profile slice at a
    revision, or a [Delete] tombstone that still carries the revision so
    the high-water mark survives compaction and restart.

    Decoders never trust lengths: every read is bounds-checked against
    the payload and oversized counts fail early, so a corrupted frame
    that slipped past the CRC still surfaces as a typed decode error
    rather than an allocation blow-up. *)

exception Decode_error of string

type ctx
(** Decode cursor: payload bytes plus a mutable position. *)

type 'a t = { enc : Buffer.t -> 'a -> unit; dec : ctx -> 'a }

val u8 : int t

val varint : int t
(** LEB128; non-negative ints only. *)

val float64 : float t
(** IEEE-754 bits, little-endian; bit-exact. *)

val string : string t
(** Varint length prefix + raw bytes. *)

val list : 'a t -> 'a list t
(** Varint count prefix. *)

val encode : 'a t -> 'a -> string

val decode : 'a t -> string -> ('a, string) result
(** Decode requiring full consumption: trailing bytes are an error. *)

(** {1 Profile records} *)

type entry = { cond : string; degree : float }
(** One profile preference: the rendered atom condition and its degree
    of interest.  Matches the in-database [profiles] table row shape. *)

type record =
  | Put of { user : string; revision : int; entries : entry list }
  | Delete of { user : string; revision : int }

val record_user : record -> string
val record_revision : record -> int

val record_c : record t

val encode_record : record -> string
val decode_record : string -> (record, string) result
