(* CRC-32/IEEE, table-driven, reflected; OCaml ints hold the 32-bit
   state directly on 64-bit platforms. *)

let poly = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* Streaming form: the running state is the bit-inverted CRC, so
   [finish (update (update init a) b) = string (a ^ b)] holds exactly —
   the property the scrubber's per-file rollups and the qcheck
   split-point test lean on. *)

let init = 0xFFFFFFFF

let update state s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  let t = Lazy.force table in
  let c = ref state in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c

let finish state = state lxor 0xFFFFFFFF

let sub s ~pos ~len =
  match update init s ~pos ~len with
  | state -> finish state
  | exception Invalid_argument _ -> invalid_arg "Crc32.sub"

let string s = sub s ~pos:0 ~len:(String.length s)
