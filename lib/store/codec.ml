exception Decode_error of string

type ctx = { data : string; mutable pos : int }

type 'a t = { enc : Buffer.t -> 'a -> unit; dec : ctx -> 'a }

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

let need ctx n =
  if n < 0 || ctx.pos + n > String.length ctx.data then
    fail "truncated record: need %d bytes at offset %d of %d" n ctx.pos
      (String.length ctx.data)

let u8 =
  {
    enc = (fun b v -> Buffer.add_char b (Char.chr (v land 0xFF)));
    dec =
      (fun ctx ->
        need ctx 1;
        let v = Char.code ctx.data.[ctx.pos] in
        ctx.pos <- ctx.pos + 1;
        v);
  }

(* LEB128: 7 value bits per byte, high bit = continuation. *)
let varint =
  {
    enc =
      (fun b v ->
        if v < 0 then invalid_arg "Codec.varint: negative";
        let rec go v =
          if v < 0x80 then Buffer.add_char b (Char.chr v)
          else begin
            Buffer.add_char b (Char.chr (0x80 lor (v land 0x7F)));
            go (v lsr 7)
          end
        in
        go v);
    dec =
      (fun ctx ->
        let rec go acc shift =
          if shift > 56 then fail "varint too long at offset %d" ctx.pos;
          need ctx 1;
          let byte = Char.code ctx.data.[ctx.pos] in
          ctx.pos <- ctx.pos + 1;
          let acc = acc lor ((byte land 0x7F) lsl shift) in
          if byte land 0x80 = 0 then acc else go acc (shift + 7)
        in
        go 0 0);
  }

let float64 =
  {
    enc =
      (fun b v ->
        let bits = Int64.bits_of_float v in
        let bytes = Bytes.create 8 in
        Bytes.set_int64_le bytes 0 bits;
        Buffer.add_bytes b bytes);
    dec =
      (fun ctx ->
        need ctx 8;
        let bits = String.get_int64_le ctx.data ctx.pos in
        ctx.pos <- ctx.pos + 8;
        Int64.float_of_bits bits);
  }

let string =
  {
    enc =
      (fun b v ->
        varint.enc b (String.length v);
        Buffer.add_string b v);
    dec =
      (fun ctx ->
        let len = varint.dec ctx in
        need ctx len;
        let s = String.sub ctx.data ctx.pos len in
        ctx.pos <- ctx.pos + len;
        s);
  }

let list item =
  {
    enc =
      (fun b v ->
        varint.enc b (List.length v);
        List.iter (item.enc b) v);
    dec =
      (fun ctx ->
        let n = varint.dec ctx in
        (* Each element costs at least one byte, so a count larger than
           the remaining payload is garbage — reject before allocating. *)
        if n > String.length ctx.data - ctx.pos then
          fail "list count %d exceeds remaining payload at offset %d" n
            ctx.pos;
        List.init n (fun _ -> item.dec ctx));
  }

let encode c v =
  let b = Buffer.create 64 in
  c.enc b v;
  Buffer.contents b

let decode c s =
  let ctx = { data = s; pos = 0 } in
  match c.dec ctx with
  | v ->
      if ctx.pos <> String.length s then
        Error
          (Printf.sprintf "trailing garbage: %d of %d bytes consumed"
             ctx.pos (String.length s))
      else Ok v
  | exception Decode_error e -> Error e

(* ----------------------------- records ----------------------------- *)

type entry = { cond : string; degree : float }

type record =
  | Put of { user : string; revision : int; entries : entry list }
  | Delete of { user : string; revision : int }

let record_user = function Put { user; _ } | Delete { user; _ } -> user

let record_revision = function
  | Put { revision; _ } | Delete { revision; _ } -> revision

let entry_c =
  {
    enc =
      (fun b e ->
        string.enc b e.cond;
        float64.enc b e.degree);
    dec =
      (fun ctx ->
        let cond = string.dec ctx in
        let degree = float64.dec ctx in
        { cond; degree });
  }

let put_tag = 1
let delete_tag = 2

let record_c =
  {
    enc =
      (fun b r ->
        match r with
        | Put { user; revision; entries } ->
            u8.enc b put_tag;
            string.enc b user;
            varint.enc b revision;
            (list entry_c).enc b entries
        | Delete { user; revision } ->
            u8.enc b delete_tag;
            string.enc b user;
            varint.enc b revision);
    dec =
      (fun ctx ->
        let tag = u8.dec ctx in
        if tag = put_tag then begin
          let user = string.dec ctx in
          let revision = varint.dec ctx in
          let entries = (list entry_c).dec ctx in
          Put { user; revision; entries }
        end
        else if tag = delete_tag then begin
          let user = string.dec ctx in
          let revision = varint.dec ctx in
          Delete { user; revision }
        end
        else fail "unknown record tag %d" tag);
  }

let encode_record = encode record_c
let decode_record = decode record_c
