(** Scrub-and-salvage over a store directory's committed file set.

    The scrubber walks the files the manifest names, re-verifying every
    frame CRC and the manifest's promised sizes — the same checks
    recovery performs, runnable on demand against a quiescent directory
    (the [perso_cli scrub] subcommand, the replica tier's repair path,
    and the deterministic corruption sweep all drive it).

    Classification mirrors recovery exactly: a sealed segment that is
    short, torn, or checksum-damaged is {e damage}; the active WAL's
    torn tail is the legitimate crash signature ({!File_torn_tail}) and
    only a mid-file CRC mismatch there counts as damage.  Each damaged
    file's report carries how many records its valid prefix still
    decodes — the salvageable count the replica repair credits before
    rebuilding the lost suffix from a healthy copy.

    Every file verification crosses the {!Relal.Chaos.Scrub_read} fault
    point; a planned [Flip_byte] there damages the file {e before} the
    check runs, so the sweep can prove the scrubber actually catches
    what it is pointed at. *)

type file_status =
  | File_ok
  | File_torn_tail of int
      (** active WAL only: incomplete final frame at this offset —
          recovery truncates it, no acknowledged data lost *)
  | File_damaged of Store.error

type file_report = {
  file : string;
  size : int;  (** bytes on disk *)
  crc : int;  (** whole-file CRC-32 (the rollup entry) *)
  records : int;  (** decodable records in the valid prefix *)
  status : file_status;
}

type damage = { file : string; error : Store.error; salvageable : int }

type report = { dir : string; files : file_report list; damaged : damage list }

val status_name : file_status -> string

val scan_dir : string -> report
(** Verify every manifest-named file ([files] in manifest order, active
    WAL last).  A directory without a manifest reports empty.
    @raise Store.Store_error ([Malformed]) on an unparseable manifest.
    @raise Relal.Chaos.Crashed / [Injected] under planned scrub faults. *)

val salvageable : string -> int
(** Records decodable from the file's valid prefix (0 if missing) —
    what a repair can credit before cloning the rest from a replica. *)

val rollup : string -> (string * int * int) list
(** [(file, size, crc)] for every manifest-named file present, in
    manifest order — the cheap divergence check two replicas compare.
    Empty for a manifest-less directory.
    @raise Store.Store_error ([Malformed]) on an unparseable manifest. *)

val crc_of_file : string -> int * int
(** [(size, crc)] of one file by chunked streaming reads. *)

val quarantine_dirname : string
(** Subdirectory damaged files are moved into ("quarantine"). *)

val quarantine : dir:string -> file:string -> unit
(** Move [dir/file] into [dir/quarantine/] (suffixed [.1], [.2], … if
    the name is taken), fsyncing the directory.  No-op when absent —
    the damaged bytes are preserved for post-mortem, never deleted. *)

val clear_store_files : string -> unit
(** Remove every store file from a directory, manifest first (so a
    crash mid-clear cannot leave a manifest naming missing files). *)

val clone : src:string -> dst:string -> unit
(** Rebuild [dst] as a byte-identical copy of [src]'s committed file
    set: clear [dst]'s store files, copy the manifest-named data files,
    then the manifest last (the commit point), then fsync.  A crash
    mid-clone leaves [dst] manifest-less — recovery treats it as damage
    and the replica tier re-clones. *)
