(** Replicated profile tier: N byte-identical copies of one
    log-structured store under a single root.

    {v
    root/
      REPLSTATE      replica count, primary index, shipped watermarks
      r0/ r1/ ...    one Store directory per member
      rK/quarantine/ damaged files preserved by salvage, never deleted
    v}

    {b WAL shipping.}  Every mutation is applied to the primary first —
    its fsynced append is the acknowledgement — then shipped to each
    follower through the same CRC-framed codec (the follower's own
    append path).  A follower that misses a ship (fault, crash, latent
    corruption) is caught up by a deterministic byte-identical clone of
    the primary's committed file set, either before the call returns or
    by recovery's divergence check, which compares per-file
    (name, size, crc) rollups at every open.

    {b Scrub-and-salvage.}  A member whose recovery surfaces typed
    damage is repaired, not abandoned: the records its valid prefix
    still decodes are credited as salvaged, the damaged file is moved to
    [quarantine/] for post-mortem, and the lost suffix is rebuilt by
    cloning a healthy replica.  Only when {e no} member has a clean copy
    does the tier raise the same typed fatal {!Store.Store_error} a
    single-copy store would.

    {b Automatic failover.}  Reads run against the primary; typed
    damage triggers promotion of the freshest healthy follower (highest
    revision watermark, ties to the lowest index — deterministic) and
    repair of the demoted member.  With [replicas = 1] every behavior
    collapses to the bare store's, fatal errors included.

    All operations are serialized by an internal mutex, mirroring
    {!Store}; concurrency comes from sharding (one replica set per
    shard). *)

type t

type rstats = {
  failovers : int;  (** promotions (at open, on read damage, by scrub) *)
  salvaged : int;  (** records credited from damaged files' valid prefixes *)
  quarantined : int;  (** damaged files moved into [quarantine/] *)
  catchups : int;  (** followers rebuilt by cloning the primary *)
  ship_errors : int;  (** follower ships that failed (save still acked) *)
}

val open_ : ?config:Store.config -> ?replicas:int -> string -> t
(** Open (creating members as needed) and recover: open every member,
    fail over if the recorded primary is damaged, quarantine-and-
    salvage damaged members from the healthy primary, and re-clone any
    follower whose rollup diverges.  A pre-replication layout (store
    files directly in the root) is migrated to member 0 first.

    Omitting [replicas] adopts the root's recorded count ([REPLSTATE];
    1 for a fresh root) — the scrub CLI and offline audits open
    existing roots this way.
    @raise Store.Store_error when no member recovers cleanly (the
    primary's error — exactly the single-copy behavior), or when the
    root's [REPLSTATE] pins a replica count different from an explicit
    [replicas].
    @raise Invalid_argument if [replicas < 1]. *)

val open_r :
  ?config:Store.config -> ?replicas:int -> string -> (t, Store.error) result

val root : t -> string
val replicas : t -> int

val primary_index : t -> int
(** Current primary member (reads are routed here). *)

(** {1 Mutations} — primary-acknowledged, then shipped to followers.
    Follower failures never fail an acknowledged save. *)

val save : t -> user:string -> revision:int -> Codec.entry list -> unit
val delete : t -> user:string -> revision:int -> unit

(** {1 Reads} — from the primary, failing over on typed damage until a
    healthy member answers or the set is exhausted. *)

val load : t -> user:string -> Codec.entry list option
val revision : t -> user:string -> int
val revisions : t -> (string * int) list
val users : t -> string list
val iter : t -> (user:string -> revision:int -> Codec.entry list -> unit) -> unit

(** {1 Administration} *)

val stats : t -> Store.stats
(** The primary's stats, with [torn_truncated] summed over every member
    open performed by this handle. *)

val rstats : t -> rstats

val scrub_now : t -> Scrub.report list
(** Scrub every member's committed file set (one report per member, in
    member order), then repair: fail over from a damaged primary,
    quarantine-and-salvage damaged followers, re-clone offline ones.
    @raise Store.Store_error when no member scans clean. *)

val compact_now : t -> unit
(** Compact every member (compaction is deterministic, so members stay
    byte-identical). *)

val sync : t -> unit
val close : t -> unit

val abandon : t -> unit
(** Drop all handles without syncing — the crash harness's kill. *)
