module Chaos = Relal.Chaos

let header_bytes = 8

(* Payload lengths beyond this are treated as corruption, not torn
   tails: no single profile record comes anywhere close, and the cap
   keeps a garbage length field from masquerading as a frame that
   "needs more bytes". *)
let max_payload = 1 lsl 26

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (header_bytes + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.set_int32_le b 4 (Int32.of_int (Crc32.string payload));
  Bytes.blit_string payload 0 b header_bytes n;
  Bytes.unsafe_to_string b

type t = {
  path : string;
  fd : Unix.file_descr;
  fsync : bool;
  mutable size : int;
}

let open_append ?(fsync = true) path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  { path; fd; fsync; size }

let path t = t.path
let size t = t.size

let write_all fd s pos len =
  let written = ref 0 in
  while !written < len do
    written :=
      !written + Unix.write_substring fd s (pos + !written) (len - !written)
  done

(* Truncate back to the pre-append offset after a failed append.  Best
   effort: if even this fails the scan-side torn-tail handling still
   recovers, since a partial frame never checksums. *)
let undo t off = try Unix.ftruncate t.fd off with Unix.Unix_error _ -> ()

(* A "torn" prefix is a strict prefix of the frame: fraction 1.0 would
   leave a fully valid frame behind for a save that was never
   acknowledged. *)
let torn_len frac total =
  let n = int_of_float (frac *. float_of_int total) in
  max 0 (min n (total - 1))

let append ?(point = Chaos.Wal_append) t payload =
  let fr = frame payload in
  let off = t.size in
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  let flip = ref None in
  (match Chaos.take_fault point with
  | None -> ()
  | Some (Chaos.Flip_byte frac) ->
      (* Latent corruption: the append itself succeeds; one byte of the
         file is damaged in place afterwards, for a CRC check to find. *)
      flip := Some frac
  | Some Chaos.Crash -> raise (Chaos.Crashed { point })
  | Some (Chaos.Torn_write frac) ->
      (try write_all t.fd fr 0 (torn_len frac (String.length fr))
       with Unix.Unix_error _ -> ());
      raise (Chaos.Crashed { point })
  | Some (Chaos.Short_write frac) ->
      (try write_all t.fd fr 0 (torn_len frac (String.length fr))
       with Unix.Unix_error _ -> ());
      undo t off;
      raise (Chaos.Injected { point; transient = true })
  | Some Chaos.Fsync_fail ->
      (try write_all t.fd fr 0 (String.length fr)
       with Unix.Unix_error _ -> ());
      undo t off;
      raise (Chaos.Injected { point; transient = true }));
  match
    Chaos.point point;
    write_all t.fd fr 0 (String.length fr);
    Chaos.point Chaos.Wal_fsync;
    if t.fsync then Unix.fsync t.fd
  with
  | () ->
      t.size <- off + String.length fr;
      Option.iter (fun frac -> Chaos.flip_byte_in_file t.path frac) !flip;
      off
  | exception e ->
      (match e with Chaos.Crashed _ -> () | _ -> undo t off);
      raise e

let sync t = Unix.fsync t.fd
let close t = Unix.close t.fd

(* ------------------------------ reading ------------------------------ *)

type scan_end =
  | Clean
  | Torn of { at : int; detail : string }
  | Corrupt of { at : int; detail : string }

let u32le data pos = Int32.to_int (String.get_int32_le data pos) land 0xFFFFFFFF

let scan_string data f =
  let n = String.length data in
  let rec go pos =
    if pos = n then (pos, Clean)
    else if pos + header_bytes > n then
      ( pos,
        Torn
          {
            at = pos;
            detail =
              Printf.sprintf "partial frame header (%d of %d bytes)"
                (n - pos) header_bytes;
          } )
    else begin
      let len = u32le data pos in
      if len > max_payload then
        ( pos,
          Corrupt
            {
              at = pos;
              detail = Printf.sprintf "frame length %d exceeds cap" len;
            } )
      else if pos + header_bytes + len > n then
        ( pos,
          Torn
            {
              at = pos;
              detail =
                Printf.sprintf "frame needs %d payload bytes, %d present"
                  len
                  (n - pos - header_bytes);
            } )
      else begin
        let crc = u32le data (pos + 4) in
        if Crc32.sub data ~pos:(pos + header_bytes) ~len <> crc then
          ( pos,
            Corrupt { at = pos; detail = "frame checksum mismatch" } )
        else begin
          f ~pos (String.sub data (pos + header_bytes) len);
          go (pos + header_bytes + len)
        end
      end
    end
  in
  go 0

let scan_file path f =
  let data = In_channel.with_open_bin path In_channel.input_all in
  scan_string data f

let read_frame ~path ~off ~len =
  if len < header_bytes then
    Error (Printf.sprintf "frame length %d shorter than a header" len)
  else
    match
      In_channel.with_open_bin path (fun ic ->
          In_channel.seek ic (Int64.of_int off);
          really_input_string ic len)
    with
    | exception End_of_file ->
        Error
          (Printf.sprintf "frame at %d+%d runs past end of %s" off len path)
    | data ->
        let plen = u32le data 0 in
        if plen <> len - header_bytes then
          Error
            (Printf.sprintf
               "frame at %d: header says %d payload bytes, index says %d"
               off plen (len - header_bytes))
        else begin
          let crc = u32le data 4 in
          if Crc32.sub data ~pos:header_bytes ~len:plen <> crc then
            Error (Printf.sprintf "frame at %d: checksum mismatch" off)
          else Ok (String.sub data header_bytes plen)
        end
