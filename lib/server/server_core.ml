open Relal

type config = {
  socket_path : string;
  tcp_port : int option;
  workers : int;
  queue_capacity : int;
  deadline_ms : float option;
  max_rows : int option;
  max_expansions : int option;
  drain_ms : float;
  breaker_threshold : int;
  breaker_cooldown_ms : float;
  dump_dir : string option;
  cache : bool;
  cache_entries : int;
  cache_mb : float;
  shards : int;
  store_dir : string option;
  replicas : int;
  profile_lru_entries : int;  (* 0 disables the hot-profile LRU *)
}

let default_config ~socket_path =
  {
    socket_path;
    tcp_port = None;
    workers = 4;
    queue_capacity = 64;
    deadline_ms = Some 5_000.;
    max_rows = Some 1_000_000;
    max_expansions = Some 10_000;
    drain_ms = 2_000.;
    breaker_threshold = 3;
    breaker_cooldown_ms = 250.;
    dump_dir = None;
    cache = true;
    cache_entries = 512;
    cache_mb = 32.;
    shards = 1;
    store_dir = None;
    replicas = 1;
    profile_lru_entries = 512;
  }

type reply =
  | R_rows of { notes : string list; result : Exec.result }
  | R_message of string
  | R_error of Perso.Error.t

type drain_outcome = {
  drained : bool;
  shed_at_stop : int;
  dump : (string, string) result option;
}

(* Test-only fault: when set, completion accounting "forgets" successful
   jobs, unbalancing the HEALTH ledger.  Exists so the simulation suite
   can prove its invariant audits actually detect ledger bugs (mutation
   testing); never set in production. *)
let mutate_drop_completed_ok = ref false

(* --------------------------- budget capping -------------------------- *)

let cap_opt f client server =
  match (client, server) with
  | None, s -> s
  | Some c, None -> Some c
  | Some c, Some s -> Some (f c s)

let cap_budget cfg (hdr : Protocol.header) =
  {
    Governor.deadline_ms = cap_opt Float.min hdr.deadline_ms cfg.deadline_ms;
    max_rows = cap_opt Int.min hdr.max_rows cfg.max_rows;
    max_expansions = cap_opt Int.min hdr.max_expansions cfg.max_expansions;
  }

let gov_of budget =
  if Governor.is_unlimited budget then None else Some (Governor.start budget)

let is_storage_fault = function Perso.Error.Storage _ -> true | _ -> false

(* Split "[ a, 0.9 ] [ b, 1 ]" into the line-per-entry form
   Profile.of_string expects.  Entries cannot contain ']' outside a
   quoted literal ending in ']', which we accept as unsupported on the
   wire. *)
let entries_to_profile_text entries =
  String.split_on_char ']' entries
  |> List.filter_map (fun chunk ->
         let chunk = String.trim chunk in
         if chunk = "" then None else Some (chunk ^ " ]"))
  |> String.concat "\n"

module Make (R : Runtime.S) = struct
  module Rl = Rwlock.Make (R)
  module Store = Sharded_store.Make (R)

  (* ------------------------------- jobs ------------------------------ *)

  (* A one-shot mailbox: the connection thread blocks on [take] while a
     worker fills it with [put]. *)
  type job = {
    command : Protocol.command;
    budget : Governor.budget;
    deadline_at : float option;  (* absolute, R.now seconds *)
    jm : R.mutex;
    jc : R.cond;
    mutable answer : reply option;
  }

  let job_put job reply =
    R.lock job.jm;
    job.answer <- Some reply;
    R.signal job.jc;
    R.unlock job.jm

  let job_take job =
    R.lock job.jm;
    while job.answer = None do
      R.wait job.jc job.jm
    done;
    let r = Option.get job.answer in
    R.unlock job.jm;
    r

  (* ------------------------------ server ----------------------------- *)

  type phase = Running | Draining | Stopped

  type counters = {
    mutable accepted : int;
    mutable completed_ok : int;
    mutable completed_err : int;
    mutable shed_queue_full : int;
    mutable shed_expired : int;
    mutable shed_draining : int;
    mutable shed_breaker : int;
    mutable unpersonalized_breaker : int;
    (* Strict personalization sub-ledger: every completed PERSONALIZE
       reply is accounted exactly once on each side, so
       pers_ok + pers_err = cache_hit + cache_miss + cache_incremental
       + cache_bypass — audited by the sim scenario runner. *)
    mutable pers_ok : int;
    mutable pers_err : int;
    mutable cache_hit : int;
    mutable cache_miss : int;
    mutable cache_incremental : int;
    mutable cache_bypass : int;
  }

  type t = {
    cfg : config;
    db : Database.t;
    dblock : Rl.t;
    store : Store.t;
    breaker : Breaker.t;
    qm : R.mutex;
    qc : R.cond;
    queue : job Queue.t;
    mutable phase : phase;
    mutable in_flight : int;
    c : counters;
    stop_flag : bool Atomic.t;
    mutable worker_threads : R.thread list;
    sm : R.mutex;  (* serializes stop *)
    mutable stop_outcome : drain_outcome option;
  }

  let locked m f =
    R.lock m;
    Fun.protect ~finally:(fun () -> R.unlock m) f

  (* ----------------------------- execution --------------------------- *)

  let run_unpersonalized t ~budget ~notes sql =
    match
      Perso.Error.guard (fun () -> Engine.run_sql ?gov:(gov_of budget) t.db sql)
    with
    | Ok result -> R_rows { notes; result }
    | Error e -> R_error e

  let count_source t (src : Perso.Perso_cache.source) =
    locked t.qm (fun () ->
        match src with
        | Perso.Perso_cache.Hit -> t.c.cache_hit <- t.c.cache_hit + 1
        | Perso.Perso_cache.Incremental ->
            t.c.cache_incremental <- t.c.cache_incremental + 1
        | Perso.Perso_cache.Miss -> t.c.cache_miss <- t.c.cache_miss + 1
        | Perso.Perso_cache.Bypass -> t.c.cache_bypass <- t.c.cache_bypass + 1)

  let exec_personalize t ~budget user sql =
    (* The profile load goes through the breaker: a sick store must not
       take query traffic down with it.  Open breaker, or a failed load,
       degrade to the plain query with an explanatory NOTE — the same
       contract as the personalization ladder.

       Load {e and} the cache consult + personalization run stay
       together under the user's shard read lock, so a concurrent save
       for the same user cannot slip between them (a profile snapshot
       cached under the save's new revision would serve stale plans).
       The caller already holds the main database read lock — lock
       order main -> shard -> cache.  The unpersonalized fallbacks
       touch no profile state and run outside the shard lock. *)
    let outcome =
      if Breaker.allow t.breaker then
        Store.with_user_read t.store ~user (fun sdb ->
            match Store.load_profile t.store ~user sdb with
            | Ok p -> (
                Breaker.success t.breaker;
                let r, src =
                  Perso.Perso_cache.personalize_sql_r
                    ?cache:(Store.cache_for t.store ~user)
                    ~user ~budget t.db p sql
                in
                count_source t src;
                match r with
                | Ok run ->
                    let notes =
                      List.map Perso.Personalize.degradation_to_string
                        run.Perso.Personalize.degradations
                    in
                    `Reply
                      (R_rows { notes; result = run.Perso.Personalize.result })
                | Error e -> `Reply (R_error e))
            | Error e ->
                if is_storage_fault e then Breaker.failure t.breaker
                else Breaker.success t.breaker;
                `Failed e)
      else begin
        locked t.qm (fun () ->
            t.c.unpersonalized_breaker <- t.c.unpersonalized_breaker + 1);
        `Open
      end
    in
    match outcome with
    | `Reply r -> r
    | `Failed e ->
        count_source t Perso.Perso_cache.Bypass;
        run_unpersonalized t ~budget sql
          ~notes:
            [ "unpersonalized: profile load failed: " ^ Perso.Error.to_string e ]
    | `Open ->
        count_source t Perso.Perso_cache.Bypass;
        run_unpersonalized t ~budget sql
          ~notes:[ "unpersonalized: profile-store circuit breaker open" ]

  let exec_profile_save t user entries =
    match
      if String.trim entries = "" then Ok Perso.Profile.empty
      else Perso.Profile.of_string (entries_to_profile_text entries)
    with
    | Error e -> R_error (Perso.Error.Profile e)
    | Ok profile ->
        if not (Breaker.allow t.breaker) then begin
          locked t.qm (fun () -> t.c.shed_breaker <- t.c.shed_breaker + 1);
          R_error
            (Perso.Error.Overloaded
               "profile-store circuit breaker open; retry after cooldown")
        end
        else begin
          (* Only the user's shard write lock: queries under the main
             read lock, and saves for users on other shards, keep
             flowing. *)
          match
            Perso.Error.guard (fun () ->
                Store.with_user_write t.store ~user (fun sdb ->
                    Chaos.retry (fun () ->
                        if Perso.Profile.cardinal profile = 0 then
                          Perso.Profile_store.delete sdb ~user
                        else Perso.Profile_store.save sdb ~user profile)))
          with
          | Ok () ->
              Breaker.success t.breaker;
              R_message
                (Printf.sprintf "saved user=%s entries=%d" user
                   (Perso.Profile.cardinal profile))
          | Error e ->
              if is_storage_fault e then Breaker.failure t.breaker;
              R_error e
        end

  let exec_profile_show t user =
    match
      Store.with_user_read t.store ~user (fun sdb ->
          Perso.Profile_store.load_r sdb ~user)
    with
    | Error e -> R_error e
    | Ok profile ->
        let rows =
          List.map
            (fun (atom, deg) ->
              [|
                Value.Str (Perso.Atom.to_string atom);
                Value.Float (Perso.Degree.to_float deg);
              |])
            (Perso.Profile.entries profile)
        in
        R_rows
          {
            notes = [];
            result = { Exec.cols = [| "condition"; "degree" |]; rows };
          }

  let execute t job =
    match job.command with
    | Protocol.Run sql ->
        Rl.with_read t.dblock (fun () ->
            match
              Perso.Error.guard (fun () ->
                  Engine.run_sql ?gov:(gov_of job.budget) t.db sql)
            with
            | Ok result -> R_rows { notes = []; result }
            | Error e -> R_error e)
    | Protocol.Personalize { user; sql } ->
        Rl.with_read t.dblock (fun () ->
            exec_personalize t ~budget:job.budget user sql)
    | Protocol.Profile_save { user; entries } -> exec_profile_save t user entries
    | Protocol.Profile_show user -> exec_profile_show t user
    | Protocol.Health | Protocol.Ping | Protocol.Shutdown | Protocol.Quit ->
        (* control-plane commands never enter the queue *)
        R_error (Perso.Error.Internal "control command queued")

  (* ------------------------------ workers ---------------------------- *)

  (* Expiry check, execution, and completion accounting for one popped
     job.  A job shed for sitting past its deadline counts as
     [shed_expired], not [completed_*]: no work was started. *)
  let process t job =
    match job.deadline_at with
    | Some at when R.now () > at ->
        locked t.qm (fun () -> t.c.shed_expired <- t.c.shed_expired + 1);
        R_error
          (Perso.Error.Overloaded
             "deadline expired while queued; no work was started")
    | _ ->
        let reply =
          try execute t job with e -> R_error (Perso.Error.of_exn_any e)
        in
        locked t.qm (fun () ->
            (match reply with
            | R_error _ -> t.c.completed_err <- t.c.completed_err + 1
            | R_rows _ | R_message _ ->
                if not !mutate_drop_completed_ok then
                  t.c.completed_ok <- t.c.completed_ok + 1);
            match (job.command, reply) with
            | Protocol.Personalize _, R_error _ ->
                t.c.pers_err <- t.c.pers_err + 1
            | Protocol.Personalize _, (R_rows _ | R_message _) ->
                t.c.pers_ok <- t.c.pers_ok + 1
            | _ -> ());
        reply

  let rec worker_loop t =
    R.lock t.qm;
    while Queue.is_empty t.queue && t.phase = Running do
      R.wait t.qc t.qm
    done;
    (* Draining workers finish the queue; a stopped server's queue has
       already been flushed with Overloaded replies. *)
    if t.phase <> Stopped && not (Queue.is_empty t.queue) then begin
      let job = Queue.pop t.queue in
      t.in_flight <- t.in_flight + 1;
      R.unlock t.qm;
      let reply = process t job in
      locked t.qm (fun () ->
          t.in_flight <- t.in_flight - 1;
          R.broadcast t.qc);
      job_put job reply;
      worker_loop t
    end
    else begin
      let continue = t.phase = Running in
      R.unlock t.qm;
      if continue then worker_loop t
    end

  (* ----------------------------- admission --------------------------- *)

  let submit t (hdr : Protocol.header) command =
    let budget = cap_budget t.cfg hdr in
    let deadline_at =
      Option.map (fun ms -> R.now () +. (ms /. 1000.)) budget.Governor.deadline_ms
    in
    let decision =
      locked t.qm (fun () ->
          if t.phase <> Running then begin
            t.c.shed_draining <- t.c.shed_draining + 1;
            Error (Perso.Error.Overloaded "server draining; not accepting work")
          end
          else if Queue.length t.queue >= t.cfg.queue_capacity then begin
            t.c.shed_queue_full <- t.c.shed_queue_full + 1;
            Error
              (Perso.Error.Overloaded
                 (Printf.sprintf "admission queue full (%d queued)"
                    t.cfg.queue_capacity))
          end
          else begin
            t.c.accepted <- t.c.accepted + 1;
            let job =
              {
                command;
                budget;
                deadline_at;
                jm = R.mutex_create ();
                jc = R.cond_create ();
                answer = None;
              }
            in
            Queue.push job t.queue;
            R.signal t.qc;
            Ok job
          end)
    in
    match decision with Error e -> R_error e | Ok job -> job_take job

  (* ------------------------------ health ----------------------------- *)

  let phase_name = function
    | Running -> "running"
    | Draining -> "draining"
    | Stopped -> "stopped"

  let health t =
    let cache_stats = Store.cache_stats t.store in
    let store_stats = Store.store_stats t.store in
    let replica_stats = Store.replica_stats t.store in
    let plru_stats = Store.plru_stats t.store in
    let sstat f = string_of_int (match store_stats with None -> 0 | Some s -> f s) in
    let rstat f =
      string_of_int (match replica_stats with None -> 0 | Some s -> f s)
    in
    let backend_name =
      if store_stats = None then "memory"
      else if Store.replica_count t.store > 1 then "replicated"
      else "disk"
    in
    locked t.qm (fun () ->
        [
          ("state", phase_name t.phase);
          ("shards", string_of_int (Store.shard_count t.store));
          ("store_backend", backend_name);
          ("store_replicas", string_of_int (Store.replica_count t.store));
          ("store_appends", sstat (fun s -> s.Perso_store.Store.appends));
          ("store_compactions", sstat (fun s -> s.Perso_store.Store.compactions));
          ( "store_torn_truncated",
            sstat (fun s -> s.Perso_store.Store.torn_truncated) );
          ("store_failover", rstat (fun s -> s.Perso_store.Replica.failovers));
          ("store_salvaged", rstat (fun s -> s.Perso_store.Replica.salvaged));
          ( "store_quarantined",
            rstat (fun s -> s.Perso_store.Replica.quarantined) );
          ("store_catchups", rstat (fun s -> s.Perso_store.Replica.catchups));
          ( "store_ship_errors",
            rstat (fun s -> s.Perso_store.Replica.ship_errors) );
          ("queue_depth", string_of_int (Queue.length t.queue));
          ("in_flight", string_of_int t.in_flight);
          ("workers", string_of_int t.cfg.workers);
          ("queue_capacity", string_of_int t.cfg.queue_capacity);
          ("accepted", string_of_int t.c.accepted);
          ("completed_ok", string_of_int t.c.completed_ok);
          ("completed_err", string_of_int t.c.completed_err);
          ("shed_queue_full", string_of_int t.c.shed_queue_full);
          ("shed_expired", string_of_int t.c.shed_expired);
          ("shed_draining", string_of_int t.c.shed_draining);
          ("shed_breaker", string_of_int t.c.shed_breaker);
          ("breaker_state", Breaker.state_name (Breaker.state t.breaker));
          ("breaker_trips", string_of_int (Breaker.trips t.breaker));
          ("unpersonalized_breaker", string_of_int t.c.unpersonalized_breaker);
          ("pers_ok", string_of_int t.c.pers_ok);
          ("pers_err", string_of_int t.c.pers_err);
          ("cache_hit", string_of_int t.c.cache_hit);
          ("cache_miss", string_of_int t.c.cache_miss);
          ("cache_incremental", string_of_int t.c.cache_incremental);
          ("cache_bypass", string_of_int t.c.cache_bypass);
          ("cache_invalidate", string_of_int cache_stats.invalidations);
          ("profile_lru_hit", string_of_int plru_stats.Profile_lru.hits);
          ("profile_lru_miss", string_of_int plru_stats.Profile_lru.misses);
        ])

  (* ---------------------------- stop / drain ------------------------- *)

  let request_stop t = Atomic.set t.stop_flag true
  let stop_requested t = Atomic.get t.stop_flag

  let begin_drain t =
    locked t.qm (fun () ->
        if t.phase = Running then t.phase <- Draining;
        R.broadcast t.qc)

  let draining t = locked t.qm (fun () -> t.phase <> Running)
  let stopped t = locked t.qm (fun () -> t.phase = Stopped)

  (* ------------------------------- probes ----------------------------- *)

  let lock_state t = Rl.holders t.dblock

  (* Main database rwlock first, then each shard's, in shard order —
     every one must satisfy the same exclusion invariant. *)
  let lock_states t = Rl.holders t.dblock :: Store.lock_states t.store

  (* ------------------------------- start ------------------------------ *)

  let create cfg db =
    if cfg.workers < 1 then invalid_arg "Server: workers must be >= 1";
    if cfg.queue_capacity < 1 then
      invalid_arg "Server: queue_capacity must be >= 1";
    if cfg.shards < 1 then invalid_arg "Server: shards must be >= 1";
    if cfg.replicas < 1 then invalid_arg "Server: replicas must be >= 1";
    if cfg.profile_lru_entries < 0 then
      invalid_arg "Server: profile_lru_entries must be >= 0";
    (* One cache per shard, each bound to its shard database via
       [store_db] (revision reads and invalidation events) while
       queries still run against the main database.  Each cache
       serializes its state behind its own runtime mutex, so the sim
       runtime exercises the same code single-threaded under virtual
       time.  Lock order is dblock -> shard lock -> cache lock
       (personalize under the read locks, store hooks under the shard
       write lock); nothing takes them the other way.  The configured
       entry/byte budget is split across the shards so the total
       footprint stays what the config says. *)
    let mk_cache ~store_db =
      let cm = R.mutex_create () in
      let lock =
        {
          Perso.Perso_cache.with_lock =
            (fun f ->
              R.lock cm;
              Fun.protect ~finally:(fun () -> R.unlock cm) f);
        }
      in
      Perso.Perso_cache.create ~lock
        ~max_entries:(max 1 (cfg.cache_entries / cfg.shards))
        ~max_bytes:
          (max 4096
             (int_of_float (cfg.cache_mb *. 1024. *. 1024.) / cfg.shards))
        ~store_db db
    in
    (* One hot-profile LRU per shard, behind the same runtime-mutex
       locker shape as the plan cache (innermost lock level).  The
       configured entry budget is split across the shards. *)
    let mk_plru () =
      let lm = R.mutex_create () in
      let lock =
        {
          Perso.Perso_cache.with_lock =
            (fun f ->
              R.lock lm;
              Fun.protect ~finally:(fun () -> R.unlock lm) f);
        }
      in
      Profile_lru.create ~lock
        ~capacity:(max 1 (cfg.profile_lru_entries / cfg.shards))
        ()
    in
    let store =
      Store.create
        ?cache:(if cfg.cache then Some mk_cache else None)
        ?profile_lru:
          (if cfg.profile_lru_entries > 0 then Some mk_plru else None)
        ?persist:cfg.store_dir ~replicas:cfg.replicas ~shards:cfg.shards db
    in
    let t =
      {
        cfg;
        db;
        dblock = Rl.create ();
        store;
        breaker =
          Breaker.create
            ~now:(fun () -> R.now () *. 1000.)
            ~threshold:cfg.breaker_threshold
            ~cooldown_ms:cfg.breaker_cooldown_ms ();
        qm = R.mutex_create ();
        qc = R.cond_create ();
        queue = Queue.create ();
        phase = Running;
        in_flight = 0;
        c =
          {
            accepted = 0;
            completed_ok = 0;
            completed_err = 0;
            shed_queue_full = 0;
            shed_expired = 0;
            shed_draining = 0;
            shed_breaker = 0;
            unpersonalized_breaker = 0;
            pers_ok = 0;
            pers_err = 0;
            cache_hit = 0;
            cache_miss = 0;
            cache_incremental = 0;
            cache_bypass = 0;
          };
        stop_flag = Atomic.make false;
        worker_threads = [];
        sm = R.mutex_create ();
        stop_outcome = None;
      }
    in
    t.worker_threads <-
      List.init cfg.workers (fun _ -> R.spawn (fun () -> worker_loop t));
    t

  (* -------------------------------- stop ------------------------------ *)

  let flush_queue t =
    locked t.qm (fun () ->
        let shed = ref 0 in
        while not (Queue.is_empty t.queue) do
          let job = Queue.pop t.queue in
          incr shed;
          t.c.shed_draining <- t.c.shed_draining + 1;
          job_put job
            (R_error
               (Perso.Error.Overloaded "server stopped before this request ran"))
        done;
        !shed)

  (* [on_quiesced] runs after the workers have joined but before the
     crash-safe dump — the socket layer tears down its acceptor and
     connections there, preserving the original stop ordering. *)
  let stop ?(on_quiesced = fun () -> ()) t =
    locked t.sm (fun () ->
        match t.stop_outcome with
        | Some o -> o
        | None ->
            request_stop t;
            begin_drain t;
            (* Drain: give queued + in-flight work drain_ms to finish. *)
            let deadline = R.now () +. (t.cfg.drain_ms /. 1000.) in
            let rec drain () =
              let idle =
                locked t.qm (fun () ->
                    Queue.is_empty t.queue && t.in_flight = 0)
              in
              if idle then true
              else if R.now () > deadline then false
              else begin
                R.sleep 0.005;
                drain ()
              end
            in
            let drained = drain () in
            let shed_at_stop = flush_queue t in
            locked t.qm (fun () ->
                t.phase <- Stopped;
                R.broadcast t.qc);
            List.iter R.join t.worker_threads;
            on_quiesced ();
            (* Workers are gone: consolidate the shard profiles back
               into the main catalog so the dump (and any caller
               inspecting the database after stop) sees every profile
               saved while serving. *)
            Store.merge_back t.store;
            let dump =
              Option.map
                (fun dir ->
                  match
                    Rl.with_read t.dblock (fun () -> Csv.save_db_r ~dir t.db)
                  with
                  | Ok () -> Ok dir
                  | Error e -> Error e)
                t.cfg.dump_dir
            in
            let outcome = { drained; shed_at_stop; dump } in
            t.stop_outcome <- Some outcome;
            outcome)
end
