(** A reader/writer lock for the shared {!Relal.Database.t}.

    Queries ([RUN]/[PERSONALIZE]) only read the catalog, so any number
    may run concurrently; [PROFILE SAVE] rewrites the profiles table in
    place and must be alone.  Writers are preferred: once a writer is
    waiting, new readers queue behind it, so a steady query stream
    cannot starve profile mutations.

    The lock is not reentrant — a thread acquiring it twice deadlocks —
    and [with_read]/[with_write] release on exceptions, matching the
    server's promise that a failed request never wedges the pool.

    The implementation is a functor over {!Runtime.S} so deterministic
    simulation can run the same lock logic (and audit its exclusion
    invariant via {!S.holders}) on a virtual-time cooperative
    scheduler.  The toplevel values are the production instance over
    {!Runtime.Threads}. *)

module type S = sig
  type t

  val create : unit -> t

  val with_read : t -> (unit -> 'a) -> 'a
  (** Run [f] holding a shared read lock. *)

  val with_write : t -> (unit -> 'a) -> 'a
  (** Run [f] holding the exclusive write lock. *)

  val readers : t -> int
  (** Active readers right now (observability only; racy by nature). *)

  val holders : t -> int * bool
  (** [(active_readers, writer_active)] — the exclusion invariant is
      that these are never simultaneously [> 0] and [true].  Under real
      threads the read is racy and only indicative; under the sim
      runtime it is exact at every scheduling point. *)
end

module Make (_ : Runtime.S) : S

include S
