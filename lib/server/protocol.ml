type command =
  | Run of string
  | Personalize of { user : string; sql : string }
  | Profile_save of { user : string; entries : string }
  | Profile_show of string
  | Health
  | Ping
  | Shutdown
  | Quit

type header = {
  deadline_ms : float option;
  max_rows : int option;
  max_expansions : int option;
}

let empty_header = { deadline_ms = None; max_rows = None; max_expansions = None }

(* First whitespace-delimited word, uppercased, plus the trimmed rest. *)
let split_word s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (String.uppercase_ascii s, "")
  | Some i ->
      ( String.uppercase_ascii (String.sub s 0 i),
        String.trim (String.sub s i (String.length s - i)) )

let parse_header_line line =
  let word, rest = split_word line in
  match word with
  | "DEADLINE-MS" ->
      Option.map
        (fun v hdr -> { hdr with deadline_ms = Some v })
        (float_of_string_opt rest)
  | "MAX-ROWS" ->
      Option.map
        (fun v hdr -> { hdr with max_rows = Some v })
        (int_of_string_opt rest)
  | "MAX-EXPANSIONS" ->
      Option.map
        (fun v hdr -> { hdr with max_expansions = Some v })
        (int_of_string_opt rest)
  | _ -> None

let parse_command line =
  let word, rest = split_word line in
  match word with
  | "RUN" ->
      if rest = "" then Error "RUN needs SQL text" else Ok (Run rest)
  | "PERSONALIZE" -> (
      match split_word rest with
      | "", _ -> Error "PERSONALIZE needs a user and SQL text"
      | user, sql when sql <> "" ->
          Ok (Personalize { user = String.lowercase_ascii user; sql })
      | _ -> Error "PERSONALIZE needs SQL text after the user")
  | "PROFILE" -> (
      match split_word rest with
      | "SAVE", rest' -> (
          match split_word rest' with
          | "", _ -> Error "PROFILE SAVE needs a user"
          | user, entries ->
              Ok (Profile_save { user = String.lowercase_ascii user; entries }))
      | "LOAD", user when user <> "" && not (String.contains user ' ') ->
          Ok (Profile_show (String.lowercase_ascii user))
      | _ -> Error "usage: PROFILE SAVE <user> [entries] | PROFILE LOAD <user>")
  | "HEALTH" -> Ok Health
  | "PING" -> Ok Ping
  | "SHUTDOWN" -> Ok Shutdown
  | "QUIT" -> Ok Quit
  | other -> Error (Printf.sprintf "unknown command %s" other)

let command_name = function
  | Run _ -> "RUN"
  | Personalize _ -> "PERSONALIZE"
  | Profile_save _ -> "PROFILE SAVE"
  | Profile_show _ -> "PROFILE LOAD"
  | Health -> "HEALTH"
  | Ping -> "PING"
  | Shutdown -> "SHUTDOWN"
  | Quit -> "QUIT"

(* ------------------------------ responses --------------------------- *)

type response =
  | Rows of { notes : string list; cols : string list; rows : string list list }
  | Stats of (string * string) list
  | Message of string
  | Failed of { family : string; code : int; message : string }

let one_line s =
  String.concat "; "
    (List.filter (fun l -> l <> "") (String.split_on_char '\n' s))

(* Responses render into a Buffer first: the thread shell writes the
   buffer to an out_channel, the event-loop shell writes the same bytes
   to a nonblocking fd in one batch.  Byte-identity across runtimes is
   by construction — there is exactly one renderer. *)

let bprint_rows b ~notes (res : Relal.Exec.result) =
  Printf.bprintf b "OK rows=%d\n" (List.length res.Relal.Exec.rows);
  List.iter (fun n -> Printf.bprintf b "NOTE %s\n" (one_line n)) notes;
  Printf.bprintf b "COLS %s\n"
    (String.concat "\t" (Array.to_list res.Relal.Exec.cols));
  List.iter
    (fun row ->
      Printf.bprintf b "ROW %s\n"
        (String.concat "\t"
           (Array.to_list (Array.map Relal.Value.to_string row))))
    res.Relal.Exec.rows;
  Buffer.add_string b "END\n"

let bprint_stats b stats =
  Buffer.add_string b "OK health\n";
  List.iter (fun (k, v) -> Printf.bprintf b "STAT %s %s\n" k v) stats;
  Buffer.add_string b "END\n"

let bprint_message b msg = Printf.bprintf b "OK %s\nEND\n" (one_line msg)

let bprint_error b err =
  Printf.bprintf b "ERR %s %d %s\n"
    (Perso.Error.family_name err)
    (Perso.Error.exit_code err)
    (one_line (Perso.Error.to_string err))

let via_buffer render oc =
  let b = Buffer.create 256 in
  render b;
  Buffer.output_buffer oc b;
  flush oc

let write_rows oc ~notes res = via_buffer (fun b -> bprint_rows b ~notes res) oc
let write_stats oc stats = via_buffer (fun b -> bprint_stats b stats) oc
let write_message oc msg = via_buffer (fun b -> bprint_message b msg) oc
let write_error oc err = via_buffer (fun b -> bprint_error b err) oc

let drop_prefix line p =
  let n = String.length p in
  if String.length line >= n && String.sub line 0 n = p then
    Some (String.sub line n (String.length line - n))
  else None

let read_response ic =
  match In_channel.input_line ic with
  | None -> Error "connection closed"
  | Some first -> (
      match drop_prefix first "ERR " with
      | Some rest -> (
          match String.split_on_char ' ' rest with
          | family :: code :: msg when int_of_string_opt code <> None ->
              Ok
                (Failed
                   {
                     family;
                     code = int_of_string code;
                     message = String.concat " " msg;
                   })
          | _ -> Error ("malformed ERR line: " ^ first))
      | None -> (
          match drop_prefix first "OK " with
          | None -> Error ("expected OK or ERR, got: " ^ first)
          | Some payload ->
              let notes = ref [] and cols = ref [] and rows = ref [] in
              let stats = ref [] in
              let rec body () =
                match In_channel.input_line ic with
                | None -> Error "connection closed mid-response"
                | Some "END" -> Ok ()
                | Some line ->
                    (match drop_prefix line "NOTE " with
                    | Some n -> notes := n :: !notes
                    | None -> (
                        match drop_prefix line "COLS " with
                        | Some c -> cols := String.split_on_char '\t' c
                        | None -> (
                            match drop_prefix line "ROW " with
                            | Some r ->
                                rows := String.split_on_char '\t' r :: !rows
                            | None -> (
                                match drop_prefix line "STAT " with
                                | Some s -> (
                                    match split_word s with
                                    | k, v ->
                                        stats :=
                                          (String.lowercase_ascii k, v)
                                          :: !stats)
                                | None -> ()))));
                    body ()
              in
              Result.map
                (fun () ->
                  if !stats <> [] then Stats (List.rev !stats)
                  else if !cols <> [] || !rows <> [] then
                    Rows
                      {
                        notes = List.rev !notes;
                        cols = !cols;
                        rows = List.rev !rows;
                      }
                  else Message payload)
                (body ())))
