(* A single-domain event-loop runtime built on OCaml effects — the same
   scheduler shape as the simulator's [Sched] (parked waiters, a deep
   handler per task, a central loop), but aimed at production serving
   rather than race exploration:

   - the run queue is FIFO, not seeded: no interleaving randomization;
   - blocked tasks park on timers or on fd readiness, and the idle loop
     waits in [Unix.select] over every parked fd with a timeout equal to
     the nearest timer — a poll/epoll-style readiness loop;
   - mutex/cond/unlock take fast paths without suspending when nothing
     contends, because on one domain with no preemption a task owns the
     scheduler state between suspension points anyway.

   Under [`Virtual] the clock never touches the OS: idle steps jump
   virtual time to the next timer, and any fd wait is an error.  That is
   what lets the sim run [Server_core.Make (Evloop.R)] — the full
   worker-pool/admission/drain machinery on this runtime — under
   deterministic virtual time before the runtime ever faces a socket. *)

exception Failed of string

type waiter = { wtid : int; wname : string; resume : unit -> unit }

type task = {
  tid : int;
  name : string;
  mutable finished : bool;
  mutable joiners : waiter list;
}

type mutex = {
  mutable owner : int option;
  mutable mwaiters : waiter list;  (* FIFO: tail-append, head-grant *)
}

type cond = { mutable cwaiters : (mutex * waiter) list }
type clock = [ `Real | `Virtual ]

type fd_wait = {
  fd : Unix.file_descr;
  kind : [ `Read | `Write ];
  fw_deadline : float option;  (* absolute; None = wait forever *)
  fired : bool ref;  (* true = readiness, false = timeout *)
  fw : waiter;
}

type t = {
  clock : clock;
  mutable vnow : float;  (* virtual clock only *)
  runq : waiter Queue.t;
  mutable timers : (float * waiter) list;  (* ascending by fire time *)
  mutable fdwaits : fd_wait list;
  mutable alive : int;
  mutable cur : int;  (* tid currently executing *)
  mutable next_tid : int;
  mutable steps : int;
  max_steps : int;
  mutable probes : (unit -> unit) list;
  mutable blocked_names : (int * string) list;
}

type _ Effect.t += Suspend : string * (t -> waiter -> unit) -> unit Effect.t

let current : t option ref = ref None

let sch () =
  match !current with
  | Some s -> s
  | None -> raise (Failed "Evloop primitive used outside Evloop.run")

let now_of s =
  match s.clock with `Real -> Unix.gettimeofday () | `Virtual -> s.vnow

let block_at s tid label =
  s.blocked_names <- (tid, label) :: List.remove_assoc tid s.blocked_names

let unblock s tid = s.blocked_names <- List.remove_assoc tid s.blocked_names

let push_runnable s (w : waiter) =
  unblock s w.wtid;
  Queue.push w s.runq

let add_timer s at w =
  block_at s w.wtid "sleep";
  let rec insert = function
    | [] -> [ (at, w) ]
    | (at', _) :: _ as l when at < at' -> (at, w) :: l
    | e :: rest -> e :: insert rest
  in
  s.timers <- insert s.timers

(* ------------------------------ suspension --------------------------- *)

let suspend label park = Effect.perform (Suspend (label, park))
let yield () = suspend "yield" push_runnable

let sleep d =
  suspend "sleep" (fun s w -> add_timer s (now_of s +. Float.max d 0.) w)

let now () = now_of (sch ())

let add_probe p =
  let s = sch () in
  s.probes <- s.probes @ [ p ]

(* ------------------------------ fd waits ----------------------------- *)

let wait_fd kind ?timeout fd =
  let s = sch () in
  if s.clock = `Virtual then
    raise (Failed "Evloop: fd wait under the virtual clock");
  let fired = ref false in
  suspend "fdwait" (fun s w ->
      block_at s w.wtid
        (match kind with `Read -> "read-ready" | `Write -> "write-ready");
      let fw_deadline =
        Option.map (fun d -> now_of s +. Float.max d 0.) timeout
      in
      s.fdwaits <- { fd; kind; fw_deadline; fired; fw = w } :: s.fdwaits);
  !fired

let wait_readable ?timeout fd = wait_fd `Read ?timeout fd
let wait_writable ?timeout fd = wait_fd `Write ?timeout fd

(* -------------------------------- tasks ------------------------------ *)

let finish_task s task =
  task.finished <- true;
  s.alive <- s.alive - 1;
  List.iter (push_runnable s) task.joiners;
  task.joiners <- []

(* The deep handler installed at task start stays in force across every
   [continue], so each suspension unwinds to the scheduler loop.  An
   escaped exception is fatal to the whole loop: server tasks catch
   their own I/O errors, so anything that reaches here is a bug. *)
let first_waiter s task (body : unit -> unit) : waiter =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> finish_task s task);
      exnc =
        (fun e ->
          finish_task s task;
          match e with
          | Failed _ -> raise e
          | e ->
              raise
                (Failed
                   (Printf.sprintf "task %s crashed: %s" task.name
                      (Printexc.to_string e))));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend (_label, park) ->
              Some
                (fun (k : (a, _) continuation) ->
                  park s
                    {
                      wtid = task.tid;
                      wname = task.name;
                      resume = (fun () -> continue k ());
                    })
          | _ -> None);
    }
  in
  {
    wtid = task.tid;
    wname = task.name;
    resume = (fun () -> match_with body () handler);
  }

let spawn ?name body =
  let s = sch () in
  let tid = s.next_tid in
  s.next_tid <- tid + 1;
  let name =
    match name with Some n -> n | None -> Printf.sprintf "task-%d" tid
  in
  let task = { tid; name; finished = false; joiners = [] } in
  s.alive <- s.alive + 1;
  push_runnable s (first_waiter s task body);
  task

let join task =
  if not task.finished then
    suspend "join" (fun s w ->
        if task.finished then push_runnable s w
        else begin
          block_at s w.wtid ("join " ^ task.name);
          task.joiners <- task.joiners @ [ w ]
        end)

(* ------------------------- mutexes and condvars ---------------------- *)
(* Fast paths mutate scheduler state directly: between suspension points
   a task has exclusive use of the domain, so an uncontended lock (or
   any unlock/signal) needs no suspension at all. *)

let mutex_create () = { owner = None; mwaiters = [] }

let lock m =
  let s = sch () in
  match m.owner with
  | None -> m.owner <- Some s.cur
  | Some _ ->
      suspend "lock" (fun s w ->
          match m.owner with
          | None ->
              m.owner <- Some w.wtid;
              push_runnable s w
          | Some _ ->
              block_at s w.wtid "lock";
              m.mwaiters <- m.mwaiters @ [ w ])

(* FIFO handoff: ownership transfers before the waiter runs, so late
   lockers queue behind it. *)
let grant s m =
  m.owner <- None;
  match m.mwaiters with
  | [] -> ()
  | w :: rest ->
      m.mwaiters <- rest;
      m.owner <- Some w.wtid;
      push_runnable s w

let unlock m =
  let s = sch () in
  if m.owner <> Some s.cur then
    raise (Failed "Evloop: unlock of a mutex the task does not hold");
  grant s m

let cond_create () = { cwaiters = [] }

let wait c m =
  suspend "wait" (fun s w ->
      if m.owner <> Some w.wtid then
        raise (Failed (w.wname ^ ": wait without holding the mutex"));
      grant s m;
      block_at s w.wtid "wait";
      c.cwaiters <- c.cwaiters @ [ (m, w) ])

(* A woken waiter re-acquires its mutex before running. *)
let wake s (m, w) =
  match m.owner with
  | None ->
      m.owner <- Some w.wtid;
      push_runnable s w
  | Some _ ->
      block_at s w.wtid "relock";
      m.mwaiters <- m.mwaiters @ [ w ]

let signal c =
  let s = sch () in
  match c.cwaiters with
  | [] -> ()
  | entry :: rest ->
      c.cwaiters <- rest;
      wake s entry

let broadcast c =
  let s = sch () in
  let waiters = c.cwaiters in
  c.cwaiters <- [];
  List.iter (wake s) waiters

(* -------------------------------- run -------------------------------- *)

let deadlock_report s =
  let blocked =
    s.blocked_names
    |> List.rev_map (fun (tid, at) -> Printf.sprintf "t%d@%s" tid at)
    |> String.concat ", "
  in
  Printf.sprintf "deadlock: %d task(s) blocked with nothing pending [%s]"
    s.alive blocked

(* Fire everything due at [nowt]; true when anything became runnable. *)
let fire_due s nowt =
  let due, rest = List.partition (fun (at, _) -> at <= nowt) s.timers in
  s.timers <- rest;
  List.iter (fun (_, w) -> push_runnable s w) due;
  let expired, keep =
    List.partition
      (fun fw ->
        match fw.fw_deadline with Some d -> d <= nowt | None -> false)
      s.fdwaits
  in
  s.fdwaits <- keep;
  List.iter
    (fun fw ->
      fw.fired := false;
      push_runnable s fw.fw)
    expired;
  due <> [] || expired <> []

let fds_of s kind =
  List.filter_map (fun fw -> if fw.kind = kind then Some fw.fd else None)
    s.fdwaits
  |> List.sort_uniq compare

(* Idle under the real clock: block in select over every parked fd until
   readiness or the nearest timer/deadline. *)
let step_real s =
  let nowt = Unix.gettimeofday () in
  if fire_due s nowt then ()
  else begin
    let next_at =
      List.fold_left min infinity
        (List.filter_map (fun fw -> fw.fw_deadline) s.fdwaits
        @ List.map fst s.timers)
    in
    (* Cap the wait so an externally-signalled stop flag (checked by a
       supervisor timer task) is never starved even with no fds. *)
    let timeout =
      if next_at = infinity then 0.05
      else Float.min 0.05 (Float.max 0. (next_at -. nowt))
    in
    match Unix.select (fds_of s `Read) (fds_of s `Write) [] timeout with
    | rready, wready, _ ->
        let is_ready fw =
          match fw.kind with
          | `Read -> List.mem fw.fd rready
          | `Write -> List.mem fw.fd wready
        in
        let fire, keep = List.partition is_ready s.fdwaits in
        s.fdwaits <- keep;
        List.iter
          (fun fw ->
            fw.fired := true;
            push_runnable s fw.fw)
          fire
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  end

(* Idle under the virtual clock: jump time to the next timer. *)
let step_virtual s =
  match s.timers with
  | [] -> ()
  | (at, _) :: _ ->
      s.vnow <- Float.max s.vnow at;
      ignore (fire_due s s.vnow)

let run ?(clock = `Real) ?(max_steps = max_int) main =
  let s =
    {
      clock;
      vnow = 0.;
      runq = Queue.create ();
      timers = [];
      fdwaits = [];
      alive = 0;
      cur = -1;
      next_tid = 0;
      steps = 0;
      max_steps;
      probes = [];
      blocked_names = [];
    }
  in
  let prev = !current in
  current := Some s;
  Fun.protect ~finally:(fun () -> current := prev) @@ fun () ->
  try
    ignore (spawn ~name:"main" main);
    let rec loop () =
      List.iter (fun p -> p ()) s.probes;
      if s.steps >= s.max_steps then
        Error (Printf.sprintf "step budget exceeded (%d)" s.max_steps)
      else
        match Queue.take_opt s.runq with
        | Some w ->
            s.steps <- s.steps + 1;
            s.cur <- w.wtid;
            w.resume ();
            loop ()
        | None ->
            if s.timers = [] && s.fdwaits = [] then
              if s.alive > 0 then Error (deadlock_report s) else Ok ()
            else begin
              (match s.clock with
              | `Real -> step_real s
              | `Virtual -> step_virtual s);
              loop ()
            end
    in
    loop ()
  with Failed msg -> Error msg

(* --------------------------- Runtime instance ------------------------ *)

module R : Runtime.S with type thread = task = struct
  type thread = task
  type nonrec mutex = mutex
  type nonrec cond = cond

  let now = now
  let sleep = sleep
  let spawn f = spawn f
  let join = join
  let mutex_create = mutex_create
  let lock = lock
  let unlock = unlock
  let cond_create = cond_create
  let wait = wait
  let signal = signal
  let broadcast = broadcast
end
