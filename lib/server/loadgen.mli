(** Open-loop load generator for the serve path ([bench serve]).

    Arrivals follow a seeded Poisson process at a configured offered
    rate — scheduled in absolute time before the run starts, so a slow
    server delays replies, never the offered load (no coordinated
    omission).  Users are Zipf-skewed over a fixed population; the mix
    is 55% PERSONALIZE, 20% RUN, 10% PROFILE SAVE, 10% PROFILE LOAD,
    5% HEALTH.  Latencies land in one mergeable {!Putil.Histogram} per
    client thread (microseconds).

    {!handshake} runs first and turns the two silent-server shapes into
    typed errors instead of hangs: connect retries are bounded by a
    deadline, and a listening-but-never-accepting socket is caught by a
    receive-deadlined PING. *)

type config = {
  socket_path : string;
  rate : float;  (** offered requests/second *)
  requests : int;
  clients : int;  (** persistent connections, one OS thread each *)
  seed : int;
  users : int;  (** Zipf population size *)
  zipf_s : float;  (** Zipf exponent (1.1 ≈ the paper's skew) *)
  deadline_ms : float option;  (** DEADLINE-MS header per request *)
  connect_timeout_ms : float;
  receive_timeout_s : float;
}

val default_config : socket_path:string -> config
(** 200 req/s, 1000 requests, 4 clients, 100 users at s = 1.1, 2 s
    connect bound, 30 s receive bound, no deadline header. *)

type kind = Personalize | Run_sql | Save | Load | Health

val kind_name : kind -> string

type report = {
  hist : Putil.Histogram.t;  (** every request latency, µs *)
  elapsed_s : float;
  sent : int;
  data_sent : int;  (** [sent] minus control-plane HEALTH probes *)
  ok : int;  (** data-plane OK replies (= server [completed_ok]) *)
  ok_health : int;
  err_overloaded : int;  (** typed sheds (= server shed counters) *)
  err_other : int;
  err_transport : int;
  by_kind : (string * int) list;
}

val handshake : config -> (unit, Perso.Error.t) result
(** Bounded liveness probe: typed [Overloaded] error when nothing
    listens within [connect_timeout_ms], or when a listener accepts (or
    backlogs) the connection but never answers a PING. *)

type slot = { at : float; line : string; kind : kind }

val make_script : config -> sqls:string array -> profiles:string array -> slot array
(** The precomputed arrival schedule — exposed for tests. *)

val run :
  config ->
  sqls:string array ->
  profiles:string array ->
  (report, Perso.Error.t) result
(** Handshake, then drive the full script and aggregate.  [profiles] are
    wire-format entry strings for PROFILE SAVE. *)
