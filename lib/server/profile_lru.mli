(** LRU cache of parsed hot profiles, one per shard, sitting between
    the serve path and the shard's profiles table.

    A [PERSONALIZE] must otherwise re-scan the shard's profile rows and
    re-parse every condition on each request ({!Perso.Profile_store.load}).
    This cache keys the parsed {!Perso.Profile.t} by
    [(user, registry revision)], so a hit is a Hashtbl probe — and the
    revision in the key makes staleness structurally impossible: any
    effective save/delete bumps the registry revision first, so the old
    entry simply stops matching.  Subscriber hooks
    ({!Perso.Profile_store.subscribe}) additionally {!remove} entries
    eagerly, keeping the table from pinning dead profiles until
    eviction.

    The serve path's fault semantics do not change: the cache stores
    only successfully parsed profiles, and the hit path still crosses
    the [Profile_load] chaos point (see
    {!Sharded_store.Make.load_profile}), so the circuit breaker
    observes exactly the failure stream it would without the cache. *)

type t

type stats = {
  hits : int;
  misses : int;  (** absent {e or} stale-revision probes *)
  evictions : int;  (** capacity-pressure LRU drops *)
  invalidations : int;  (** eager removals by subscriber hooks *)
  entries : int;
}

val create : ?lock:Perso.Perso_cache.locker -> capacity:int -> unit -> t
(** [capacity 0] disables the cache (every probe misses, puts drop). *)

val capacity : t -> int

val find : t -> user:string -> revision:int -> Perso.Profile.t option
(** Probe by user at the given registry revision; counts hit/miss.  A
    present entry at a different revision is stale — dropped and
    counted as a miss. *)

val put : t -> user:string -> revision:int -> Perso.Profile.t -> unit
(** Insert (replacing any entry for the user), evicting the
    least-recently-used entry when at capacity. *)

val remove : t -> user:string -> unit
(** Eager invalidation — the subscriber-hook path. *)

val stats : t -> stats
