module type S = sig
  type t

  val create : unit -> t
  val with_read : t -> (unit -> 'a) -> 'a
  val with_write : t -> (unit -> 'a) -> 'a
  val readers : t -> int
  val holders : t -> int * bool
end

module Make (R : Runtime.S) = struct
  type t = {
    m : R.mutex;
    can_read : R.cond;
    can_write : R.cond;
    mutable active_readers : int;
    mutable writer_active : bool;
    mutable writers_waiting : int;
  }

  let create () =
    {
      m = R.mutex_create ();
      can_read = R.cond_create ();
      can_write = R.cond_create ();
      active_readers = 0;
      writer_active = false;
      writers_waiting = 0;
    }

  let lock_read t =
    R.lock t.m;
    (* Writer preference: queue behind waiting writers, not just active
       ones, so saves cannot be starved by an unbroken reader stream. *)
    while t.writer_active || t.writers_waiting > 0 do
      R.wait t.can_read t.m
    done;
    t.active_readers <- t.active_readers + 1;
    R.unlock t.m

  let unlock_read t =
    R.lock t.m;
    t.active_readers <- t.active_readers - 1;
    if t.active_readers = 0 then R.signal t.can_write;
    R.unlock t.m

  let lock_write t =
    R.lock t.m;
    t.writers_waiting <- t.writers_waiting + 1;
    while t.writer_active || t.active_readers > 0 do
      R.wait t.can_write t.m
    done;
    t.writers_waiting <- t.writers_waiting - 1;
    t.writer_active <- true;
    R.unlock t.m

  let unlock_write t =
    R.lock t.m;
    t.writer_active <- false;
    if t.writers_waiting > 0 then R.signal t.can_write
    else R.broadcast t.can_read;
    R.unlock t.m

  let with_read t f =
    lock_read t;
    Fun.protect ~finally:(fun () -> unlock_read t) f

  let with_write t f =
    lock_write t;
    Fun.protect ~finally:(fun () -> unlock_write t) f

  let readers t = t.active_readers
  let holders t = (t.active_readers, t.writer_active)
end

include Make (Runtime.Threads)
