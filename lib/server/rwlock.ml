type t = {
  m : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable active_readers : int;
  mutable writer_active : bool;
  mutable writers_waiting : int;
}

let create () =
  {
    m = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    active_readers = 0;
    writer_active = false;
    writers_waiting = 0;
  }

let lock_read t =
  Mutex.lock t.m;
  (* Writer preference: queue behind waiting writers, not just active
     ones, so saves cannot be starved by an unbroken reader stream. *)
  while t.writer_active || t.writers_waiting > 0 do
    Condition.wait t.can_read t.m
  done;
  t.active_readers <- t.active_readers + 1;
  Mutex.unlock t.m

let unlock_read t =
  Mutex.lock t.m;
  t.active_readers <- t.active_readers - 1;
  if t.active_readers = 0 then Condition.signal t.can_write;
  Mutex.unlock t.m

let lock_write t =
  Mutex.lock t.m;
  t.writers_waiting <- t.writers_waiting + 1;
  while t.writer_active || t.active_readers > 0 do
    Condition.wait t.can_write t.m
  done;
  t.writers_waiting <- t.writers_waiting - 1;
  t.writer_active <- true;
  Mutex.unlock t.m

let unlock_write t =
  Mutex.lock t.m;
  t.writer_active <- false;
  if t.writers_waiting > 0 then Condition.signal t.can_write
  else Condition.broadcast t.can_read;
  Mutex.unlock t.m

let with_read t f =
  lock_read t;
  Fun.protect ~finally:(fun () -> unlock_read t) f

let with_write t f =
  lock_write t;
  Fun.protect ~finally:(fun () -> unlock_write t) f

let readers t = t.active_readers
