open Relal

module Make (R : Runtime.S) = struct
  module Rl = Rwlock.Make (R)

  type shard = {
    sdb : Database.t;  (* mini catalog holding only the profiles table *)
    lock : Rl.t;
    cache : Perso.Perso_cache.t option;
    store : Perso_store.Replica.t option;  (* durable tier when persisted *)
    plru : Profile_lru.t option;  (* hot parsed-profile cache *)
  }

  type t = { shards : shard array; main : Database.t; replicas : int }

  let shard_count t = Array.length t.shards

  let shard_index ~shards user =
    if shards = 1 then 0
    else Hashtbl.hash (String.lowercase_ascii user) mod shards

  let shard_for t user =
    t.shards.(shard_index ~shards:(Array.length t.shards) user)

  let profile_rows db =
    match Database.find_table db Perso.Profile_store.table_name with
    | None -> []
    | Some tbl -> Table.to_list tbl

  (* Shard layout marker inside a persisted store root.  The hash
     placement of every record depends on the shard count, so reopening
     with a different [--shards] would silently route users to shards
     that do not hold their profiles — refuse instead. *)
  let shards_marker = "SHARDS"

  let check_shard_marker root n =
    let path = Filename.concat root shards_marker in
    if Sys.file_exists path then begin
      let text =
        String.trim (In_channel.with_open_bin path In_channel.input_all)
      in
      match String.split_on_char ' ' text with
      | [ "perso-shards"; count ] when int_of_string_opt count <> None ->
          let stored = Option.get (int_of_string_opt count) in
          if stored <> n then
            raise
              (Perso_store.Store.Store_error
                 (Perso_store.Store.Malformed
                    {
                      file = path;
                      detail =
                        Printf.sprintf
                          "store was created with %d shards; restart with \
                           --shards %d (resharding migration is not \
                           implemented)"
                          stored stored;
                    }))
      | _ ->
          raise
            (Perso_store.Store.Store_error
               (Perso_store.Store.Malformed
                  { file = path; detail = "unreadable shard marker" }))
    end
    else begin
      Relal.Csv.write_file_sync path (Printf.sprintf "perso-shards %d\n" n);
      Relal.Csv.fsync_dir root
    end

  let raw_copy_rows t rows =
    List.iter
      (fun row ->
        let sh =
          match row.(0) with
          | Value.Str u -> shard_for t u
          | _ -> t.shards.(0)
        in
        Table.insert
          (Database.table sh.sdb Perso.Profile_store.table_name)
          (Array.copy row))
      rows

  let create ?cache ?profile_lru ?persist ?(replicas = 1) ~shards main =
    let n = max 1 shards in
    let r = max 1 replicas in
    let stores =
      match persist with
      | None -> Array.make n None
      | Some root ->
          if not (Sys.file_exists root) then Sys.mkdir root 0o755;
          check_shard_marker root n;
          Array.init n (fun i ->
              Some
                (Perso_store.Replica.open_ ~replicas:r
                   (Filename.concat root (Printf.sprintf "shard-%02d" i))))
    in
    let mk i =
      let sdb = Database.create () in
      Perso.Profile_store.install sdb;
      let plru = Option.map (fun f -> f ()) profile_lru in
      (* Eager invalidation: any effective save/delete on the shard
         drops the user's hot entry (the revision key already protects
         against staleness; this keeps dead profiles from lingering). *)
      Option.iter
        (fun lru ->
          Perso.Profile_store.subscribe sdb (fun ~user _ ->
              Profile_lru.remove lru ~user))
        plru;
      {
        sdb;
        lock = Rl.create ();
        cache = Option.map (fun f -> f ~store_db:sdb) cache;
        store = stores.(i);
        plru;
      }
    in
    let t = { shards = Array.init n mk; main; replicas = r } in
    let stores_empty =
      Array.for_all
        (function
          | None -> true
          | Some s -> Perso_store.Replica.revisions s = [])
        stores
    in
    if stores_empty then begin
      (* Seed by raw row copy: unparseable rows keep their bytes (and
         their typed load errors); revision high-water marks follow
         their users so shard counters continue above any
         dumped-and-reloaded predecessor. *)
      raw_copy_rows t (profile_rows main);
      let revs = Perso.Profile_store.revisions main in
      Array.iteri
        (fun i sh ->
          let mine =
            List.filter (fun (u, _) -> shard_index ~shards:n u = i) revs
          in
          if mine <> [] then Perso.Profile_store.seed_revisions sh.sdb mine;
          match sh.store with
          | None -> ()
          | Some s ->
              (* First open of this store: make the seeded state durable,
                 then write through from here on. *)
              let b = Perso_store.Backend.of_replica s in
              Perso.Profile_store.export sh.sdb b;
              Perso.Profile_store.attach sh.sdb b)
        t.shards
    end
    else
      (* The durable tier has data: it is authoritative, recovered
         as-of the last acknowledged mutation.  The main catalog's
         profile rows (from an older dump, or absent entirely) are
         ignored — merge_back will refresh them at shutdown. *)
      Array.iter
        (fun sh ->
          match sh.store with
          | None -> ()
          | Some s ->
              Perso.Profile_store.restore sh.sdb
                (Perso_store.Backend.of_replica s))
        t.shards;
    t

  let with_user_read t ~user f =
    let sh = shard_for t user in
    Rl.with_read sh.lock (fun () -> f sh.sdb)

  let with_user_write t ~user f =
    let sh = shard_for t user in
    Rl.with_write sh.lock (fun () -> f sh.sdb)

  let cache_for t ~user = (shard_for t user).cache

  (* Profile load for the serve path: probe the shard's hot LRU at the
     user's current registry revision before falling back to the table
     scan + parse.  A hit skips the re-parse, {e not} the fault point:
     the breaker must observe exactly the failure stream the uncached
     path produces, so the hit still crosses [Profile_load].  Caller
     holds the user's shard read lock. *)
  let load_profile t ~user db =
    let sh = shard_for t user in
    match sh.plru with
    | None -> Perso.Profile_store.load_r db ~user
    | Some lru -> (
        let revision = Perso.Profile_store.revision db ~user in
        match Profile_lru.find lru ~user ~revision with
        | Some p ->
            Perso.Error.guard (fun () ->
                Chaos.point Chaos.Profile_load;
                p)
        | None -> (
            match Perso.Profile_store.load_r db ~user with
            | Ok p ->
                Profile_lru.put lru ~user ~revision p;
                Ok p
            | Error _ as e -> e))

  let zero_plru_stats : Profile_lru.stats =
    { hits = 0; misses = 0; evictions = 0; invalidations = 0; entries = 0 }

  let plru_stats t =
    Array.fold_left
      (fun (acc : Profile_lru.stats) sh ->
        match sh.plru with
        | None -> acc
        | Some lru ->
            let s = Profile_lru.stats lru in
            {
              Profile_lru.hits = acc.hits + s.hits;
              misses = acc.misses + s.misses;
              evictions = acc.evictions + s.evictions;
              invalidations = acc.invalidations + s.invalidations;
              entries = acc.entries + s.entries;
            })
      zero_plru_stats t.shards

  let zero_stats : Perso.Perso_cache.stats =
    {
      hits = 0;
      incremental = 0;
      misses = 0;
      bypasses = 0;
      evictions = 0;
      invalidations = 0;
      entries = 0;
      bytes = 0;
    }

  let cache_stats t =
    Array.fold_left
      (fun (acc : Perso.Perso_cache.stats) sh ->
        match sh.cache with
        | None -> acc
        | Some c ->
            let s = Perso.Perso_cache.stats c in
            {
              Perso.Perso_cache.hits = acc.hits + s.hits;
              incremental = acc.incremental + s.incremental;
              misses = acc.misses + s.misses;
              bypasses = acc.bypasses + s.bypasses;
              evictions = acc.evictions + s.evictions;
              invalidations = acc.invalidations + s.invalidations;
              entries = acc.entries + s.entries;
              bytes = acc.bytes + s.bytes;
            })
      zero_stats t.shards

  let lock_states t =
    Array.to_list (Array.map (fun sh -> Rl.holders sh.lock) t.shards)

  let persisted t = Array.exists (fun sh -> sh.store <> None) t.shards
  let replica_count t = t.replicas

  let store_stats t =
    if not (persisted t) then None
    else
      Some
        (Array.fold_left
           (fun (acc : Perso_store.Store.stats) sh ->
             match sh.store with
             | None -> acc
             | Some s ->
                 let st = Perso_store.Replica.stats s in
                 {
                   Perso_store.Store.appends = acc.appends + st.appends;
                   rotations = acc.rotations + st.rotations;
                   compactions = acc.compactions + st.compactions;
                   compact_failures =
                     acc.compact_failures + st.compact_failures;
                   torn_truncated = acc.torn_truncated + st.torn_truncated;
                   segments = acc.segments + st.segments;
                   live_users = acc.live_users + st.live_users;
                   wal_bytes = acc.wal_bytes + st.wal_bytes;
                 })
           {
             Perso_store.Store.appends = 0;
             rotations = 0;
             compactions = 0;
             compact_failures = 0;
             torn_truncated = 0;
             segments = 0;
             live_users = 0;
             wal_bytes = 0;
           }
           t.shards)

  let replica_stats t =
    if not (persisted t) then None
    else
      Some
        (Array.fold_left
           (fun (acc : Perso_store.Replica.rstats) sh ->
             match sh.store with
             | None -> acc
             | Some s ->
                 let rs = Perso_store.Replica.rstats s in
                 {
                   Perso_store.Replica.failovers = acc.failovers + rs.failovers;
                   salvaged = acc.salvaged + rs.salvaged;
                   quarantined = acc.quarantined + rs.quarantined;
                   catchups = acc.catchups + rs.catchups;
                   ship_errors = acc.ship_errors + rs.ship_errors;
                 })
           {
             Perso_store.Replica.failovers = 0;
             salvaged = 0;
             quarantined = 0;
             catchups = 0;
             ship_errors = 0;
           }
           t.shards)

  let merge_back t =
    let rows =
      Array.to_list t.shards |> List.concat_map (fun sh -> profile_rows sh.sdb)
    in
    Perso.Profile_store.install t.main;
    let tbl = Database.table t.main Perso.Profile_store.table_name in
    Table.clear tbl;
    List.iter (Table.insert tbl) rows;
    (* Revisions merge back too, so a dump of the main catalog carries
       every shard's high-water mark into the next incarnation. *)
    let revs =
      Array.to_list t.shards
      |> List.concat_map (fun sh -> Perso.Profile_store.revisions sh.sdb)
    in
    if revs <> [] then Perso.Profile_store.seed_revisions t.main revs;
    Array.iter
      (fun sh ->
        match sh.store with
        | None -> ()
        | Some s -> Perso_store.Replica.close s)
      t.shards
end
