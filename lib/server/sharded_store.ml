open Relal

module Make (R : Runtime.S) = struct
  module Rl = Rwlock.Make (R)

  type shard = {
    sdb : Database.t;  (* mini catalog holding only the profiles table *)
    lock : Rl.t;
    cache : Perso.Perso_cache.t option;
  }

  type t = { shards : shard array; main : Database.t }

  let shard_count t = Array.length t.shards

  let shard_for t user =
    let n = Array.length t.shards in
    if n = 1 then t.shards.(0)
    else t.shards.(Hashtbl.hash (String.lowercase_ascii user) mod n)

  let profile_rows db =
    match Database.find_table db Perso.Profile_store.table_name with
    | None -> []
    | Some tbl -> Table.to_list tbl

  let create ?cache ~shards main =
    let n = max 1 shards in
    let mk _ =
      let sdb = Database.create () in
      Perso.Profile_store.install sdb;
      {
        sdb;
        lock = Rl.create ();
        cache = Option.map (fun f -> f ~store_db:sdb) cache;
      }
    in
    let t = { shards = Array.init n mk; main } in
    (* Seed by raw row copy: unparseable rows keep their bytes (and
       their typed load errors); no revision bumps — fresh shard
       databases start at revision 0 with empty caches, which is
       consistent. *)
    List.iter
      (fun row ->
        let sh =
          match row.(0) with
          | Value.Str u -> shard_for t u
          | _ -> t.shards.(0)
        in
        Table.insert
          (Database.table sh.sdb Perso.Profile_store.table_name)
          (Array.copy row))
      (profile_rows main);
    t

  let with_user_read t ~user f =
    let sh = shard_for t user in
    Rl.with_read sh.lock (fun () -> f sh.sdb)

  let with_user_write t ~user f =
    let sh = shard_for t user in
    Rl.with_write sh.lock (fun () -> f sh.sdb)

  let cache_for t ~user = (shard_for t user).cache

  let zero_stats : Perso.Perso_cache.stats =
    {
      hits = 0;
      incremental = 0;
      misses = 0;
      bypasses = 0;
      evictions = 0;
      invalidations = 0;
      entries = 0;
      bytes = 0;
    }

  let cache_stats t =
    Array.fold_left
      (fun (acc : Perso.Perso_cache.stats) sh ->
        match sh.cache with
        | None -> acc
        | Some c ->
            let s = Perso.Perso_cache.stats c in
            {
              Perso.Perso_cache.hits = acc.hits + s.hits;
              incremental = acc.incremental + s.incremental;
              misses = acc.misses + s.misses;
              bypasses = acc.bypasses + s.bypasses;
              evictions = acc.evictions + s.evictions;
              invalidations = acc.invalidations + s.invalidations;
              entries = acc.entries + s.entries;
              bytes = acc.bytes + s.bytes;
            })
      zero_stats t.shards

  let lock_states t =
    Array.to_list (Array.map (fun sh -> Rl.holders sh.lock) t.shards)

  let merge_back t =
    let rows =
      Array.to_list t.shards |> List.concat_map (fun sh -> profile_rows sh.sdb)
    in
    Perso.Profile_store.install t.main;
    let tbl = Database.table t.main Perso.Profile_store.table_name in
    Table.clear tbl;
    List.iter (Table.insert tbl) rows
end
