(** The concurrent personalization server.

    One process serves many clients over a Unix-domain socket (and
    optionally TCP) with the line protocol of {!Protocol}.  The
    architecture is a classic bounded system:

    {v
    acceptor ──► connection threads ──► bounded admission queue ──► worker pool
                      │                        │                        │
                      │   queue full /         │  expired while         │ per-request
                      │   draining: shed       │  queued: shed          │ Governor budget
                      ▼                        ▼                        ▼
                 ERR overloaded           ERR overloaded          result / typed error
    v}

    - {b Admission control}: each data-plane request is pushed into a
      queue of at most [queue_capacity] jobs.  When the queue is full,
      or the server is draining, the request is rejected {e immediately}
      with a typed [Overloaded] error — the server never queues
      unboundedly.  A request whose deadline elapses while it waits in
      the queue is shed by the worker without doing any work.
    - {b Budgets}: client [DEADLINE-MS]/[MAX-ROWS]/[MAX-EXPANSIONS]
      headers are capped by the server's configured limits and armed as
      a {!Relal.Governor} budget per request.
    - {b Circuit breaking}: profile-store operations run through a
      {!Breaker}.  While open, [PERSONALIZE] skips the profile load and
      serves the plain query (with a [NOTE]), and [PROFILE SAVE] is
      rejected with [Overloaded]; the breaker half-opens on a timer.
    - {b Isolation}: queries hold a shared read lock on the database;
      [PROFILE SAVE] holds the exclusive write lock (see {!Rwlock}).
    - {b Graceful drain}: {!request_stop} (wired to SIGTERM by the CLI
      and to the [SHUTDOWN] command) stops admission; {!stop} waits up
      to [drain_ms] for queued and in-flight work, sheds whatever
      remains, optionally crash-safe-dumps the database, and joins every
      thread.

    Control-plane commands ([HEALTH], [PING], [SHUTDOWN], [QUIT]) are
    answered on the connection thread without queueing, so the server
    stays observable exactly when it is saturated. *)

type config = Server_core.config = {
  socket_path : string;  (** Unix-domain socket to listen on *)
  tcp_port : int option;  (** also listen on 127.0.0.1:port *)
  workers : int;  (** worker-pool size (>= 1) *)
  queue_capacity : int;  (** admission-queue bound (>= 1) *)
  deadline_ms : float option;  (** server-side cap on request deadlines *)
  max_rows : int option;  (** cap on rows-produced budgets *)
  max_expansions : int option;  (** cap on selection-expansion budgets *)
  drain_ms : float;  (** graceful-shutdown drain deadline *)
  breaker_threshold : int;  (** consecutive storage faults that trip *)
  breaker_cooldown_ms : float;  (** open → half-open timer *)
  dump_dir : string option;  (** crash-safe dump target on shutdown *)
  cache : bool;  (** personalization plan cache on the serve path *)
  cache_entries : int;  (** LRU entry bound (split across shards) *)
  cache_mb : float;  (** LRU byte bound (approximate accounting) *)
  shards : int;  (** user-id shards for the profile store (>= 1) *)
  store_dir : string option;
      (** log-structured durable profile store root ([--store disk:DIR]);
          [None] keeps profiles in memory only *)
  replicas : int;
      (** replica-set members per shard store ([--replicas N], >= 1):
          saves ship to every member, recovery scrubs/salvages/fails
          over among them *)
  profile_lru_entries : int;
      (** hot parsed-profile LRU entries, split across shards
          ([--profile-lru N], 0 disables) *)
}

val default_config : socket_path:string -> config
(** 4 workers, queue of 64, 5 s deadline cap, 1M rows, 10k expansions,
    2 s drain, breaker trips after 3 and half-opens after 250 ms, no
    TCP, no dump. *)

type t

val start : config -> Relal.Database.t -> t
(** Bind the sockets and spawn the acceptor and worker threads.  The
    database is shared — the server takes ownership of coordinating
    access to it.  @raise Unix.Unix_error when binding fails. *)

val request_stop : t -> unit
(** Flag the server to drain (idempotent, safe from a signal handler's
    thread context).  Admission stops at the next check; use {!stop} or
    {!wait} to complete the shutdown. *)

val draining : t -> bool

type drain_outcome = Server_core.drain_outcome = {
  drained : bool;  (** queue and in-flight hit zero within [drain_ms] *)
  shed_at_stop : int;  (** jobs still queued when the deadline passed *)
  dump : (string, string) result option;
      (** [Some (Ok dir)] after a successful shutdown dump *)
}

val stop : t -> drain_outcome
(** Drain and finalize: wait up to [drain_ms] for in-flight work, shed
    the rest with [Overloaded] errors, dump if configured, close the
    sockets and join every server thread.  Idempotent — later calls
    return the first outcome. *)

val wait : t -> drain_outcome
(** Block until something requests a stop ([SHUTDOWN] command, signal
    handler calling {!request_stop}), then {!stop}.  What the CLI's
    [serve] runs after {!start}. *)

val health : t -> (string * string) list
(** The counters the [HEALTH] command reports, as ordered pairs:
    [state], [queue_depth], [in_flight], [workers], [queue_capacity],
    [accepted], [completed_ok], [completed_err], [shed_queue_full],
    [shed_expired], [shed_draining], [shed_breaker], [breaker_state],
    [breaker_trips], [unpersonalized_breaker].  Every data-plane request
    the server ever saw is accounted: with [shed_draining] split into
    its admission-time part [d_a] (rejected while draining) and its
    stop-time part [d_s] (= {!drain_outcome}.[shed_at_stop], queued jobs
    flushed when the drain deadline passed),
    [arrivals = accepted + shed_queue_full + d_a] and
    [accepted = completed_ok + completed_err + shed_expired + d_s +
    queue_depth + in_flight].  [shed_breaker] counts [PROFILE SAVE]s
    rejected because the breaker was open — those also appear in
    [completed_err] (they were admitted, then refused). *)
