(** The line-oriented wire protocol of the personalization server.

    A {e request} is zero or more header lines followed by one command
    line (blank lines between requests are ignored):

    {v
    DEADLINE-MS 250          -- optional: wall-clock budget for this request
    MAX-ROWS 10000           -- optional: rows-produced budget
    MAX-EXPANSIONS 500       -- optional: selection-expansions budget
    PERSONALIZE julie select mv.title from movie mv, play pl where mv.mid = pl.mid
    v}

    Client budgets are {e capped} by the server's own limits — a client
    may ask for less work than the server default, never more.

    Commands:
    - [RUN <sql>] — execute SQL as-is
    - [PERSONALIZE <user> <sql>] — personalize under the user's stored
      profile, then execute (degrading per the ladder)
    - [PROFILE SAVE <user> \[ cond, degree \] ...] — replace the user's
      stored profile with the given entries (none = delete)
    - [PROFILE LOAD <user>] — list the stored profile
    - [HEALTH] — queue/in-flight/shed/breaker/drain counters
    - [PING] — liveness probe
    - [SHUTDOWN] — graceful drain, then server exit
    - [QUIT] — close this connection

    Keywords are case-insensitive.  [HEALTH], [PING], [SHUTDOWN] and
    [QUIT] are control-plane: they bypass the admission queue, so they
    answer even when the server is saturated or draining.

    A {e response} is either a single error line

    {v ERR <family> <exit-code> <one-line message> v}

    (families and exit codes exactly as {!Perso.Error.family_name} /
    {!Perso.Error.exit_code}), or an [OK] block terminated by [END]:

    {v
    OK rows=2
    NOTE degraded: ...       -- zero or more advisory notes
    COLS title      doi      -- tab-separated column names
    ROW 'Double Take'        0.962
    ROW 'Sweet Chaos'        0.962
    END
    v}

    [HEALTH] answers with [STAT <name> <value>] lines instead of
    [COLS]/[ROW]; message-only responses ([PROFILE SAVE], [PING],
    [SHUTDOWN]) carry their payload on the [OK] line itself. *)

type command =
  | Run of string
  | Personalize of { user : string; sql : string }
  | Profile_save of { user : string; entries : string }
      (** [entries]: whitespace-separated [\[ cond, degree \]] blocks *)
  | Profile_show of string
  | Health
  | Ping
  | Shutdown
  | Quit

type header = {
  deadline_ms : float option;
  max_rows : int option;
  max_expansions : int option;
}

val empty_header : header

val parse_header_line : string -> (header -> header) option
(** [Some update] when the line is a budget header, [None] when it is a
    command (or garbage) line. *)

val parse_command : string -> (command, string) result

val command_name : command -> string
(** The leading keyword, for logs and counters. *)

(** {1 Response formatting / parsing}

    Writers emit one complete response and flush.  The reader returns
    the structured form; it is what {!Client} uses. *)

type response =
  | Rows of { notes : string list; cols : string list; rows : string list list }
  | Stats of (string * string) list
  | Message of string
  | Failed of { family : string; code : int; message : string }

val one_line : string -> string
(** Newlines collapsed to ["; "] — everything on a wire line must stay a
    line. *)

val bprint_rows : Buffer.t -> notes:string list -> Relal.Exec.result -> unit
(** Render a row response into a buffer.  The [write_*] channel writers
    and the event-loop shell both go through these renderers, so replies
    are byte-identical across I/O runtimes by construction. *)

val bprint_stats : Buffer.t -> (string * string) list -> unit
val bprint_message : Buffer.t -> string -> unit
val bprint_error : Buffer.t -> Perso.Error.t -> unit

val write_rows :
  out_channel -> notes:string list -> Relal.Exec.result -> unit

val write_stats : out_channel -> (string * string) list -> unit

val write_message : out_channel -> string -> unit

val write_error : out_channel -> Perso.Error.t -> unit

val read_response : in_channel -> (response, string) result
(** Blocking read of one response.  [Error] on a protocol violation or
    EOF mid-response. *)
