module type S = sig
  type thread
  type mutex
  type cond

  val now : unit -> float
  val sleep : float -> unit
  val spawn : (unit -> unit) -> thread
  val join : thread -> unit
  val mutex_create : unit -> mutex
  val lock : mutex -> unit
  val unlock : mutex -> unit
  val cond_create : unit -> cond
  val wait : cond -> mutex -> unit
  val signal : cond -> unit
  val broadcast : cond -> unit
end

module Threads = struct
  type thread = Thread.t
  type mutex = Mutex.t
  type cond = Condition.t

  let now = Unix.gettimeofday
  let sleep = Thread.delay
  let spawn f = Thread.create f ()
  let join = Thread.join
  let mutex_create () = Mutex.create ()
  let lock = Mutex.lock
  let unlock = Mutex.unlock
  let cond_create () = Condition.create ()
  let wait = Condition.wait
  let signal = Condition.signal
  let broadcast = Condition.broadcast
end
