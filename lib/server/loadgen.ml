(* Open-loop load generator for the serve path.

   Open loop means arrivals are scheduled, not paced by responses: a
   seeded Poisson process fixes every request's absolute send time up
   front, and a slow server makes requests pile up behind their arrival
   times instead of silently throttling the offered rate — the
   coordinated-omission-free way to measure a latency distribution.
   Users are Zipf-skewed over a fixed population (the paper's workload
   shape: a few hot users dominate), and the request mix covers
   PERSONALIZE / RUN / PROFILE SAVE / PROFILE LOAD / HEALTH.

   Latencies are recorded in microseconds into one {!Putil.Histogram}
   per client thread and merged at the end — the merge is exact, that is
   the histogram's design contract. *)

type config = {
  socket_path : string;
  rate : float;  (* offered load, requests/second *)
  requests : int;
  clients : int;  (* persistent connections, one OS thread each *)
  seed : int;
  users : int;  (* Zipf population: u0 (hottest) .. u<users-1> *)
  zipf_s : float;
  deadline_ms : float option;  (* per-request budget header *)
  connect_timeout_ms : float;  (* handshake bound, see {!handshake} *)
  receive_timeout_s : float;  (* per-reply bound once running *)
}

let default_config ~socket_path =
  {
    socket_path;
    rate = 200.;
    requests = 1_000;
    clients = 4;
    seed = 42;
    users = 100;
    zipf_s = 1.1;
    deadline_ms = None;
    connect_timeout_ms = 2_000.;
    receive_timeout_s = 30.;
  }

type kind = Personalize | Run_sql | Save | Load | Health

let kind_name = function
  | Personalize -> "personalize"
  | Run_sql -> "run"
  | Save -> "save"
  | Load -> "load"
  | Health -> "health"

type report = {
  hist : Putil.Histogram.t;  (* all request latencies, µs *)
  elapsed_s : float;  (* first send to last reply *)
  sent : int;
  data_sent : int;  (* sent minus control-plane (HEALTH) *)
  ok : int;  (* data-plane successes *)
  ok_health : int;
  err_overloaded : int;  (* ERR replies in the overloaded family *)
  err_other : int;  (* ERR replies of any other family *)
  err_transport : int;  (* lost/garbled connections *)
  by_kind : (string * int) list;  (* sent per request kind *)
}

(* ------------------------------ handshake ---------------------------- *)

(* Never hang on a server that is not actually serving.  Two distinct
   failure shapes are bounded here:
   - nothing listens (no socket file / ECONNREFUSED): connect retries
     stop at [connect_timeout_ms];
   - something listens but never accepts or answers (a full backlog
     looks exactly like a healthy server to connect(2)): a receive
     deadline on a PING turns the silence into an error. *)
let handshake cfg : (unit, Perso.Error.t) result =
  match Client.connect ~wait_ms:cfg.connect_timeout_ms cfg.socket_path with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Perso.Error.Overloaded
           (Printf.sprintf "bench serve: no server at %s within %.0f ms (%s)"
              cfg.socket_path cfg.connect_timeout_ms (Unix.error_message e)))
  | c ->
      let verdict =
        try
          Client.set_receive_timeout c
            (Float.max 0.05 (cfg.connect_timeout_ms /. 1000.));
          match Client.request c "PING" with
          | Ok (Protocol.Message _) -> Ok ()
          | Ok _ ->
              Error
                (Perso.Error.Internal "bench serve: unexpected PING reply shape")
          | Error msg ->
              Error
                (Perso.Error.Overloaded
                   (Printf.sprintf
                      "bench serve: %s accepted but PING failed within %.0f \
                       ms: %s"
                      cfg.socket_path cfg.connect_timeout_ms msg))
        with Unix.Unix_error _ | Sys_error _ | Sys_blocked_io | End_of_file ->
          Error
            (Perso.Error.Overloaded
               (Printf.sprintf
                  "bench serve: %s accepted but never answered PING within \
                   %.0f ms"
                  cfg.socket_path cfg.connect_timeout_ms))
      in
      Client.close c;
      verdict

(* ------------------------------- script ------------------------------ *)

type slot = { at : float; line : string; kind : kind }

(* The whole arrival process and request mix precomputed from the seed:
   exponential inter-arrival gaps at [rate], Zipf-ranked users, and a
   55/20/10/10/5 PERSONALIZE/RUN/SAVE/LOAD/HEALTH mix. *)
let make_script cfg ~sqls ~profiles =
  if sqls = [||] then invalid_arg "Loadgen: no queries";
  if profiles = [||] then invalid_arg "Loadgen: no profiles";
  let rng = Putil.Rng.create cfg.seed in
  let zipf = Putil.Zipf.create ~n:cfg.users ~s:cfg.zipf_s in
  let t = ref 0. in
  Array.init cfg.requests (fun _ ->
      (* Inverse-CDF exponential; 1-u keeps the log argument nonzero. *)
      let u = Putil.Rng.float rng 1. in
      t := !t +. (-.log (1. -. u) /. cfg.rate);
      let user = Printf.sprintf "u%d" (Putil.Zipf.sample zipf rng) in
      let kind =
        match Putil.Rng.int rng 100 with
        | x when x < 55 -> Personalize
        | x when x < 75 -> Run_sql
        | x when x < 85 -> Save
        | x when x < 95 -> Load
        | _ -> Health
      in
      let line =
        match kind with
        | Personalize ->
            Printf.sprintf "PERSONALIZE %s %s" user
              sqls.(Putil.Rng.int rng (Array.length sqls))
        | Run_sql ->
            Printf.sprintf "RUN %s"
              sqls.(Putil.Rng.int rng (Array.length sqls))
        | Save ->
            Printf.sprintf "PROFILE SAVE %s %s" user
              profiles.(Putil.Rng.int rng (Array.length profiles))
        | Load -> Printf.sprintf "PROFILE LOAD %s" user
        | Health -> "HEALTH"
      in
      { at = !t; line; kind })

(* -------------------------------- run -------------------------------- *)

type tally = {
  mutable t_ok : int;
  mutable t_ok_health : int;
  mutable t_overloaded : int;
  mutable t_other : int;
  mutable t_transport : int;
}

let overloaded_family = Perso.Error.family_name (Perso.Error.Overloaded "")

let run cfg ~sqls ~profiles : (report, Perso.Error.t) result =
  match handshake cfg with
  | Error e -> Error e
  | Ok () ->
      let script = make_script cfg ~sqls ~profiles in
      let n = Array.length script in
      let clients = max 1 cfg.clients in
      let hists = Array.init clients (fun _ -> Putil.Histogram.create ()) in
      let tallies =
        Array.init clients (fun _ ->
            {
              t_ok = 0;
              t_ok_health = 0;
              t_overloaded = 0;
              t_other = 0;
              t_transport = 0;
            })
      in
      let start = Unix.gettimeofday () +. 0.05 in
      let worker w =
        let conn = Client.connect ~wait_ms:cfg.connect_timeout_ms cfg.socket_path in
        Client.set_receive_timeout conn cfg.receive_timeout_s;
        let hist = hists.(w) and tally = tallies.(w) in
        Fun.protect
          ~finally:(fun () -> Client.close conn)
          (fun () ->
            let i = ref w in
            while !i < n do
              let slot = script.(!i) in
              let due = start +. slot.at in
              let d = due -. Unix.gettimeofday () in
              if d > 0. then Thread.delay d;
              let t0 = Unix.gettimeofday () in
              (match
                 Client.request ?deadline_ms:cfg.deadline_ms conn slot.line
               with
              | Ok (Protocol.Stats _) -> tally.t_ok_health <- tally.t_ok_health + 1
              | Ok (Protocol.Rows _ | Protocol.Message _) ->
                  tally.t_ok <- tally.t_ok + 1
              | Ok (Protocol.Failed { family; _ }) ->
                  if family = overloaded_family then
                    tally.t_overloaded <- tally.t_overloaded + 1
                  else tally.t_other <- tally.t_other + 1
              | Error _ -> tally.t_transport <- tally.t_transport + 1
              | exception (Unix.Unix_error _ | Sys_error _ | Sys_blocked_io) ->
                  tally.t_transport <- tally.t_transport + 1);
              let us =
                int_of_float ((Unix.gettimeofday () -. t0) *. 1e6 +. 0.5)
              in
              Putil.Histogram.record hist us;
              i := !i + clients
            done)
      in
      let threads =
        Array.init clients (fun w -> Thread.create worker w)
      in
      Array.iter Thread.join threads;
      let elapsed_s = Unix.gettimeofday () -. start in
      let hist = Putil.Histogram.create () in
      Array.iter (fun h -> Putil.Histogram.merge_into ~dst:hist h) hists;
      let sum f = Array.fold_left (fun a t -> a + f t) 0 tallies in
      let by_kind =
        List.map
          (fun k ->
            ( kind_name k,
              Array.fold_left
                (fun a s -> if s.kind = k then a + 1 else a)
                0 script ))
          [ Personalize; Run_sql; Save; Load; Health ]
      in
      let health_sent = List.assoc (kind_name Health) by_kind in
      Ok
        {
          hist;
          elapsed_s;
          sent = n;
          data_sent = n - health_sent;
          ok = sum (fun t -> t.t_ok);
          ok_health = sum (fun t -> t.t_ok_health);
          err_overloaded = sum (fun t -> t.t_overloaded);
          err_other = sum (fun t -> t.t_other);
          err_transport = sum (fun t -> t.t_transport);
          by_kind;
        }
