(** A user-id-sharded profile store for the serve path.

    With one database rwlock, every [PROFILE SAVE] excludes every
    concurrent [PERSONALIZE] — even for unrelated users — because the
    profiles table lives in the shared catalog.  This module splits the
    profile storage across [N] shard databases, each a mini catalog
    holding only the profiles table, each behind its own
    {!Rwlock.Make} instance and (optionally) its own {!Perso.Perso_cache}
    bound to the shard via [~store_db].  A save then takes only its
    shard's write lock: queries keep flowing, and saves for users on
    other shards proceed concurrently.

    Sharding is by [Hashtbl.hash] of the lowercased username — the same
    normalization {!Perso.Profile_store} applies — so every operation
    for a user deterministically lands on one shard.

    Rows are copied {e raw} between the main catalog and the shards
    (seeding at {!Make.create}, consolidation at {!Make.merge_back}),
    not through profile parsing: unparseable rows — which the store
    surfaces as typed [Error.Profile] values at load time — survive the
    round trip and keep producing the same typed errors they would in
    an unsharded server.

    Lock order (documented in DESIGN.md §5g): main database rwlock
    (outer, queries) → shard rwlock (inner, profile access) → cache
    lock (innermost).  Nothing takes them in any other order. *)

module Make (R : Runtime.S) : sig
  type t

  val create :
    ?cache:(store_db:Relal.Database.t -> Perso.Perso_cache.t) ->
    ?profile_lru:(unit -> Profile_lru.t) ->
    ?persist:string ->
    ?replicas:int ->
    shards:int ->
    Relal.Database.t ->
    t
  (** [create ?cache ?profile_lru ?persist ?replicas ~shards main]
      builds [max 1 shards] shard databases, seeds them by raw-copying
      the main catalog's profiles table (rows with a malformed username
      column go to shard 0 so nothing is dropped) along with its
      revision high-water marks, and — when [cache] is given — builds
      one per-shard cache with the shard database as its [store_db].
      The main catalog's profiles table is left untouched until
      {!merge_back}.

      [profile_lru] builds one hot parsed-profile LRU per shard
      (consulted by {!load_profile}), wired to the shard's
      {!Perso.Profile_store.subscribe} hook for eager invalidation.

      [persist] names a store root directory: each shard gets its own
      replica set ({!Perso_store.Replica}, [max 1 replicas] members)
      under [root/shard-NN], attached write-through.  On first open
      (all stores empty) the main catalog's profiles are exported into
      the stores; afterwards the stores are authoritative — crash
      recovery replays them and the main catalog's profile rows are
      ignored.  A [SHARDS] marker in the root pins the shard count;
      reopening with a different [--shards] raises a typed
      [Store_error] (resharding migration is a documented non-goal for
      now); each replica set's [REPLSTATE] likewise pins the replica
      count.
      @raise Perso_store.Store.Store_error on recovery failure (every
      replica of some shard damaged), a shard or replica count
      mismatch, or (first open only) a profile row too malformed to
      export. *)

  val shard_count : t -> int

  val with_user_read : t -> user:string -> (Relal.Database.t -> 'a) -> 'a
  (** Run [f shard_db] holding the user's shard read lock. *)

  val with_user_write : t -> user:string -> (Relal.Database.t -> 'a) -> 'a
  (** Run [f shard_db] holding the user's shard write lock. *)

  val cache_for : t -> user:string -> Perso.Perso_cache.t option
  (** The user's shard cache ([None] when built without [?cache]). *)

  val load_profile :
    t ->
    user:string ->
    Relal.Database.t ->
    (Perso.Profile.t, Perso.Error.t) result
  (** {!Perso.Profile_store.load_r} with the shard's hot LRU in front
      (when built with [?profile_lru]): probe by (user, current registry
      revision); a hit returns the already-parsed profile while still
      crossing the [Profile_load] fault point, so breaker behavior is
      unchanged.  Call with the user's shard database, under the shard
      read lock. *)

  val plru_stats : t -> Profile_lru.stats
  (** Field-wise sum of every shard's hot-profile LRU counters — the
      HEALTH view.  All zeros when built without [?profile_lru]. *)

  val cache_stats : t -> Perso.Perso_cache.stats
  (** Field-wise sum of every shard cache's counters — the HEALTH
      ledger view.  All zeros when built without [?cache]. *)

  val lock_states : t -> (int * bool) list
  (** [(active_readers, writer_active)] per shard, in shard order — the
      exclusion probes for the simulation's invariant audit. *)

  val persisted : t -> bool
  (** Whether the shards carry durable stores ([?persist] was given). *)

  val replica_count : t -> int
  (** Members per shard replica set (1 when unreplicated). *)

  val store_stats : t -> Perso_store.Store.stats option
  (** Field-wise sum of every shard store's counters, [None] for the
      in-memory backend — the HEALTH ledger view. *)

  val replica_stats : t -> Perso_store.Replica.rstats option
  (** Field-wise sum of every shard replica set's failover, salvage,
      quarantine, catch-up, and ship-error counters; [None] for the
      in-memory backend. *)

  val merge_back : t -> unit
  (** Raw-copy every shard's profile rows (in shard order) back into
      the main catalog's profiles table, replacing its contents, merge
      the shard revision high-water marks into the main registry (and
      its [profile_revs] table, so dumps carry them), and sync + close
      any durable stores.  For quiesced servers only — the caller must
      guarantee no concurrent shard access; {!Server_core.Make.stop}
      runs it after the workers have joined, before the crash-safe
      dump. *)
end
