(** Transport-independent server core.

    Everything the personalization server does apart from sockets —
    admission control over a bounded queue, the fixed worker pool,
    budget capping, breaker-gated profile access under the rwlock,
    graceful drain with the strict HEALTH counter ledger — lives here,
    as a functor over the {!Runtime.S} concurrency substrate.

    {!Server} instantiates it with {!Runtime.Threads} and adds the
    Unix-socket/TCP front end; the deterministic simulation harness
    ([Perso_sim]) instantiates it with a seeded cooperative scheduler
    and a virtual clock, so the very same admission / drain / ledger
    code paths replay bit-for-bit from a seed.

    Ledger invariants (audited by [test_server.ml] and [Perso_sim]):
    {ul
    {- [arrivals = accepted + shed_queue_full + shed_draining'] where
       [shed_draining'] counts admission-time sheds;}
    {- [accepted = completed_ok + completed_err + shed_expired +
       shed_at_stop + queue_depth + in_flight], with [queue_depth] and
       [in_flight] both 0 after {!Make.stop} returns;}
    {- [pers_ok + pers_err = cache_hit + cache_miss + cache_incremental
       + cache_bypass]: every completed PERSONALIZE reply is accounted
       exactly once by outcome and exactly once by where its plan came
       from ({!Perso.Perso_cache.source}; [Bypass] covers a disabled
       cache, breaker-degraded unpersonalized replies, degraded-rung
       answers, and pre-personalization failures such as parse
       errors).}} *)

type config = {
  socket_path : string;
  tcp_port : int option;
  workers : int;
  queue_capacity : int;
  deadline_ms : float option;
  max_rows : int option;
  max_expansions : int option;
  drain_ms : float;
  breaker_threshold : int;
  breaker_cooldown_ms : float;
  dump_dir : string option;
  cache : bool;  (** personalization plan cache on the serve path *)
  cache_entries : int;  (** LRU entry bound (split across shards) *)
  cache_mb : float;  (** LRU byte bound (approximate accounting) *)
  shards : int;
      (** user-id shards for the profile store ({!Sharded_store}): a
          PROFILE SAVE takes only its shard's write lock, so queries and
          saves for other users keep flowing *)
  store_dir : string option;
      (** durable profile tier: a log-structured {!Perso_store.Store}
          root with one store per shard ([--store disk:DIR]).  [None]
          (the default) keeps profiles purely in memory.  On open, a
          non-empty store is authoritative — crash recovery replays its
          WALs and the catalog's profile rows are ignored *)
  replicas : int;
      (** members per shard replica set ({!Perso_store.Replica},
          [--replicas N]): every save ships to N byte-identical copies;
          recovery scrubs, salvages, and fails over among them.  [1]
          (the default) is the plain single-copy store *)
  profile_lru_entries : int;
      (** hot parsed-profile LRU entry bound, split across shards
          ({!Profile_lru}); [0] disables it *)
}

val default_config : socket_path:string -> config
(** Cache on, 512 entries, 32 MiB, 1 shard, in-memory store,
    1 replica, 512 hot-profile LRU entries. *)

type reply =
  | R_rows of { notes : string list; result : Relal.Exec.result }
  | R_message of string
  | R_error of Perso.Error.t

type drain_outcome = {
  drained : bool;
  shed_at_stop : int;
  dump : (string, string) result option;
}

val mutate_drop_completed_ok : bool ref
(** Test-only fault: when [true], successful completions are dropped
    from the ledger.  The simulation suite arms this to prove its
    invariant audits catch ledger bugs (mutation testing).  Never set
    in production. *)

val cap_budget : config -> Protocol.header -> Relal.Governor.budget
(** Client-requested budgets capped by the server's own limits. *)

module Make (_ : Runtime.S) : sig
  type t

  val create : config -> Relal.Database.t -> t
  (** Validate the config and start the worker pool.  No sockets. *)

  val submit : t -> Protocol.header -> Protocol.command -> reply
  (** Admission (shed when draining or the queue is full), then block
      until a worker answers the job's one-shot mailbox. *)

  val health : t -> (string * string) list
  val request_stop : t -> unit
  val stop_requested : t -> bool
  val begin_drain : t -> unit
  val draining : t -> bool
  val stopped : t -> bool

  val stop : ?on_quiesced:(unit -> unit) -> t -> drain_outcome
  (** Drain (bounded by [drain_ms]), flush the queue with typed
      [Overloaded] replies, join the workers, run [on_quiesced] (the
      socket layer's teardown hook), then take the optional crash-safe
      dump.  Idempotent: later calls return the first outcome. *)

  val lock_state : t -> int * bool
  (** [(active_readers, writer_active)] of the database rwlock — the
      exclusion probe for the simulation's invariant audit. *)

  val lock_states : t -> (int * bool) list
  (** The database rwlock's holders followed by each profile shard's,
      in shard order.  Every element must satisfy the same exclusion
      invariant; the simulation audits them all. *)
end
