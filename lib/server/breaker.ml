type state = Closed | Open | Half_open

type t = {
  m : Mutex.t;
  now : unit -> float;  (* ms *)
  threshold : int;
  cooldown_ms : float;
  mutable consecutive_failures : int;
  mutable opened_at : float option;  (* Some => open/half-open *)
  mutable probe_out : bool;  (* a half-open probe is in flight *)
  mutable trips : int;
}

let default_now () = Unix.gettimeofday () *. 1000.

let create ?(now = default_now) ~threshold ~cooldown_ms () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  {
    m = Mutex.create ();
    now;
    threshold;
    cooldown_ms;
    consecutive_failures = 0;
    opened_at = None;
    probe_out = false;
    trips = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let cooled t at = t.now () -. at >= t.cooldown_ms

let state_unlocked t =
  match t.opened_at with
  | None -> Closed
  | Some at -> if cooled t at then Half_open else Open

let state t = locked t (fun () -> state_unlocked t)

let allow t =
  locked t (fun () ->
      match state_unlocked t with
      | Closed -> true
      | Open -> false
      | Half_open ->
          (* One probe at a time: the slot frees on success/failure. *)
          if t.probe_out then false
          else begin
            t.probe_out <- true;
            true
          end)

let success t =
  locked t (fun () ->
      t.consecutive_failures <- 0;
      t.opened_at <- None;
      t.probe_out <- false)

let trip t =
  t.trips <- t.trips + 1;
  t.opened_at <- Some (t.now ());
  t.probe_out <- false

let failure t =
  locked t (fun () ->
      match t.opened_at with
      | Some _ ->
          (* Failed half-open probe (or a straggler from before the
             trip): re-open and restart the cooldown. *)
          trip t
      | None ->
          t.consecutive_failures <- t.consecutive_failures + 1;
          if t.consecutive_failures >= t.threshold then trip t)

let trips t = locked t (fun () -> t.trips)

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"
