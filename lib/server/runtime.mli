(** Concurrency substrate the server core is written against.

    Every primitive the serving stack needs from the operating system —
    the clock, sleeping, spawning and joining threads, mutexes and
    condition variables — is collected in one signature so the same
    server logic can run on two substrates:

    - {!Threads}: real [Thread]/[Mutex]/[Condition]/[Unix.gettimeofday],
      used in production ({!Server} instantiates {!Server_core.Make}
      with it);
    - [Perso_sim.Sim_runtime.R]: a seeded single-threaded cooperative
      scheduler with a virtual clock, used by deterministic simulation
      so an entire serve/call session replays bit-for-bit from a seed.

    This generalizes the injectable-clock pattern already used by
    {!Breaker} ([?now]) and [Relal.Chaos.retry] ([?sleep]) from "inject
    one function" to "inject the whole substrate". *)

module type S = sig
  type thread
  type mutex
  type cond

  val now : unit -> float
  (** Seconds, [Unix.gettimeofday]-like. *)

  val sleep : float -> unit
  (** Sleep for the given number of seconds. *)

  val spawn : (unit -> unit) -> thread
  val join : thread -> unit
  val mutex_create : unit -> mutex
  val lock : mutex -> unit
  val unlock : mutex -> unit
  val cond_create : unit -> cond

  val wait : cond -> mutex -> unit
  (** Atomically release the mutex and wait; the mutex is held again
      when [wait] returns.  Standard condition-variable semantics:
      callers must re-check their predicate in a loop. *)

  val signal : cond -> unit
  val broadcast : cond -> unit
end

module Threads :
  S
    with type thread = Thread.t
     and type mutex = Mutex.t
     and type cond = Condition.t
(** The production substrate: real threads and the real clock. *)
