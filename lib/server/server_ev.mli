(** Event-loop socket front end — [serve --io evloop].

    The same server as {!Server} (identical {!Server_core} behind the
    wire: bounded admission, worker pool, breaker, graceful drain,
    HEALTH ledger) but on the single-domain {!Evloop} runtime:
    connections are cooperative tasks parked on fd readiness, and every
    reply renders through the shared {!Protocol} buffer printers before
    one batched write, so responses are byte-identical to the thread
    shell by construction (enforced by [test_serve_io]). *)

type config = Server_core.config
type drain_outcome = Server_core.drain_outcome

val run :
  ?stop_flag:bool Atomic.t ->
  ?on_started:((string * string) list -> unit) ->
  config ->
  Relal.Database.t ->
  drain_outcome
(** Bind the sockets and run the event loop on the calling thread until
    something requests a stop: [stop_flag] set true (safe from a signal
    handler — it is polled every 50 ms), a [SHUTDOWN] command, or a
    core-level stop.  [on_started] fires once inside the loop with the
    initial HEALTH counters, after the sockets are accepting.
    @raise Unix.Unix_error when binding fails
    @raise Failure when the loop itself fails (a runtime bug) *)

(** {2 Background handle}

    For tests and the bench harness: the loop on a private OS thread,
    with the same start/stop surface as {!Server}. *)

type t

val start : config -> Relal.Database.t -> t
(** Returns once the sockets are accepting.  @raise Failure when binding
    or the loop fails at startup. *)

val request_stop : t -> unit
(** Idempotent, signal-safe. *)

val stop : t -> drain_outcome
(** Request a stop, join the loop thread, return the drain outcome. *)
