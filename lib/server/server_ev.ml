(* The event-loop socket front end ([serve --io evloop]).

   Same shape as {!Server} — acceptor, per-connection handlers, and
   everything behind the wire in {!Server_core} — but every "thread" is
   a cooperative {!Evloop} task on one domain: connections park on fd
   readiness instead of blocking an OS thread, and replies render into a
   buffer ({!Protocol.bprint_rows} and friends — the exact renderers the
   thread shell uses, so the bytes match by construction) and go out in
   one batched write.  Worker-pool semantics (bounded admission, typed
   Overloaded shedding, graceful drain) come from the shared core,
   unchanged. *)

module Core = Server_core.Make (Evloop.R)

type config = Server_core.config
type drain_outcome = Server_core.drain_outcome

(* ---------------------------- connections ---------------------------- *)

type conn = {
  fd : Unix.file_descr;
  rbuf : Bytes.t;
  mutable pending : string;  (* read but not yet consumed *)
  mutable eof : bool;
}

(* One line, parking on readability when the buffer runs dry.  EOF with
   a partial line returns the partial line — the same contract as
   [In_channel.input_line] on the thread path. *)
let rec read_line c =
  match String.index_opt c.pending '\n' with
  | Some i ->
      let line = String.sub c.pending 0 i in
      c.pending <-
        String.sub c.pending (i + 1) (String.length c.pending - i - 1);
      Some line
  | None ->
      if c.eof then
        if c.pending = "" then None
        else begin
          let line = c.pending in
          c.pending <- "";
          Some line
        end
      else begin
        ignore (Evloop.wait_readable c.fd : bool);
        (match Unix.read c.fd c.rbuf 0 (Bytes.length c.rbuf) with
        | 0 -> c.eof <- true
        | n -> c.pending <- c.pending ^ Bytes.sub_string c.rbuf 0 n
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> c.eof <- true);
        read_line c
      end

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ignore (Evloop.wait_writable fd : bool);
          go off
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send c render =
  let b = Buffer.create 256 in
  render b;
  write_all c.fd (Buffer.contents b)

let read_request c =
  let rec go hdr =
    match read_line c with
    | None -> None
    | Some line ->
        let line = String.trim line in
        if line = "" then go hdr
        else (
          match Protocol.parse_header_line line with
          | Some update -> go (update hdr)
          | None -> Some (hdr, Protocol.parse_command line))
  in
  go Protocol.empty_header

type loop_state = {
  core : Core.t;
  mutable conns : (Unix.file_descr * Evloop.task) list;
}

let unregister_conn st fd =
  st.conns <- List.filter (fun (fd', _) -> fd' <> fd) st.conns

let handle_connection st fd =
  let c = { fd; rbuf = Bytes.create 8192; pending = ""; eof = false } in
  let finally () =
    unregister_conn st fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      try
        let rec loop () =
          match read_request c with
          | None -> ()
          | Some (_, Error msg) ->
              send c (fun b ->
                  Protocol.bprint_error b (Perso.Error.Parse ("protocol: " ^ msg)));
              loop ()
          | Some (_, Ok Protocol.Quit) -> ()
          | Some (_, Ok Protocol.Ping) ->
              send c (fun b -> Protocol.bprint_message b "pong");
              loop ()
          | Some (_, Ok Protocol.Health) ->
              send c (fun b -> Protocol.bprint_stats b (Core.health st.core));
              loop ()
          | Some (_, Ok Protocol.Shutdown) ->
              send c (fun b -> Protocol.bprint_message b "draining");
              Core.request_stop st.core;
              Core.begin_drain st.core;
              loop ()
          | Some (hdr, Ok cmd) ->
              (match Core.submit st.core hdr cmd with
              | Server_core.R_rows { notes; result } ->
                  send c (fun b -> Protocol.bprint_rows b ~notes result)
              | Server_core.R_message m ->
                  send c (fun b -> Protocol.bprint_message b m)
              | Server_core.R_error e ->
                  send c (fun b -> Protocol.bprint_error b e));
              loop ()
        in
        loop ()
      with
      | End_of_file | Sys_error _ -> ()
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ())

(* ------------------------------ acceptor ----------------------------- *)

(* Accepting continues while draining (control plane must answer, data
   commands shed with typed errors); only a stopped core ends the loop —
   identical policy to the thread acceptor. *)
let accept_loop st lfd =
  let rec loop () =
    if Core.stop_requested st.core then Core.begin_drain st.core;
    if Core.stopped st.core then ()
    else begin
      (if Evloop.wait_readable ~timeout:0.05 lfd then
         match Unix.accept lfd with
         | fd, _ ->
             Unix.set_nonblock fd;
             let task =
               Evloop.spawn ~name:"conn" (fun () -> handle_connection st fd)
             in
             st.conns <- (fd, task) :: st.conns
         | exception
             Unix.Unix_error
               ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
             ()
         | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

(* ------------------------------- run --------------------------------- *)

let listen_unix path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let run ?(stop_flag = Atomic.make false) ?on_started (cfg : config) db =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listeners =
    listen_unix cfg.socket_path
    :: (match cfg.tcp_port with Some p -> [ listen_tcp p ] | None -> [])
  in
  List.iter Unix.set_nonblock listeners;
  let outcome = ref None in
  let loop_result =
    Evloop.run (fun () ->
        let st = { core = Core.create cfg db; conns = [] } in
        let acceptors =
          List.map
            (fun lfd ->
              Evloop.spawn ~name:"acceptor" (fun () -> accept_loop st lfd))
            listeners
        in
        Option.iter (fun f -> f (Core.health st.core)) on_started;
        (* Supervisor: wait for an external stop flag (signal handler),
           a SHUTDOWN command, or anything else that flags the core. *)
        let rec await () =
          if Atomic.get stop_flag then Core.request_stop st.core;
          if Core.stop_requested st.core || Core.draining st.core then ()
          else begin
            Evloop.sleep 0.05;
            await ()
          end
        in
        await ();
        outcome :=
          Some
            (Core.stop st.core ~on_quiesced:(fun () ->
                 List.iter Evloop.join acceptors;
                 (* Shutting the connection fds down fires their parked
                    readers with EOF; each task closes its own fd. *)
                 let conns = st.conns in
                 List.iter
                   (fun (fd, _) ->
                     try Unix.shutdown fd Unix.SHUTDOWN_ALL
                     with Unix.Unix_error _ -> ())
                   conns;
                 List.iter (fun (_, task) -> Evloop.join task) conns)))
  in
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    listeners;
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  match (loop_result, !outcome) with
  | Ok (), Some o -> o
  | Ok (), None -> failwith "Server_ev: loop ended without an outcome"
  | Error msg, _ -> failwith ("Server_ev: " ^ msg)

(* --------------------- background handle (tests) --------------------- *)

type t = {
  stop_flag : bool Atomic.t;
  mutable th : Thread.t option;
  mutable outcome : drain_outcome option;
  mutable error : string option;
  m : Mutex.t;
  cv : Condition.t;
  mutable started : bool;
}

let start cfg db =
  let t =
    {
      stop_flag = Atomic.make false;
      th = None;
      outcome = None;
      error = None;
      m = Mutex.create ();
      cv = Condition.create ();
      started = false;
    }
  in
  let mark_started () =
    Mutex.lock t.m;
    t.started <- true;
    Condition.broadcast t.cv;
    Mutex.unlock t.m
  in
  let th =
    Thread.create
      (fun () ->
        (try
           t.outcome <-
             Some
               (run ~stop_flag:t.stop_flag
                  ~on_started:(fun _ -> mark_started ())
                  cfg db)
         with e -> t.error <- Some (Printexc.to_string e));
        (* Unblock the starter even when binding failed. *)
        mark_started ())
      ()
  in
  t.th <- Some th;
  Mutex.lock t.m;
  while not t.started do
    Condition.wait t.cv t.m
  done;
  Mutex.unlock t.m;
  match t.error with
  | Some e ->
      Thread.join th;
      failwith e
  | None -> t

let request_stop t = Atomic.set t.stop_flag true

let stop t =
  request_stop t;
  Option.iter Thread.join t.th;
  match (t.error, t.outcome) with
  | Some e, _ -> failwith e
  | None, Some o -> o
  | None, None -> failwith "Server_ev: stopped without an outcome"
