type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
}

type entry = { revision : int; profile : Perso.Profile.t; mutable tick : int }

type t = {
  capacity : int;
  lock : Perso.Perso_cache.locker;
  tbl : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ?(lock = Perso.Perso_cache.no_lock) ~capacity () =
  {
    capacity = max 0 capacity;
    lock;
    tbl = Hashtbl.create 64;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let capacity t = t.capacity

let find t ~user ~revision =
  t.lock.with_lock @@ fun () ->
  match Hashtbl.find_opt t.tbl user with
  | Some e when e.revision = revision ->
      t.clock <- t.clock + 1;
      e.tick <- t.clock;
      t.hits <- t.hits + 1;
      Some e.profile
  | Some _ ->
      (* Stale revision: a mutation beat the invalidation hook to the
         shard (or the entry predates a restart) — drop it now. *)
      Hashtbl.remove t.tbl user;
      t.misses <- t.misses + 1;
      None
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun user e acc ->
        match acc with
        | Some (_, tick) when tick <= e.tick -> acc
        | _ -> Some (user, e.tick))
      t.tbl None
  in
  match victim with
  | Some (user, _) ->
      Hashtbl.remove t.tbl user;
      t.evictions <- t.evictions + 1
  | None -> ()

let put t ~user ~revision profile =
  if t.capacity > 0 then
    t.lock.with_lock @@ fun () ->
    if (not (Hashtbl.mem t.tbl user)) && Hashtbl.length t.tbl >= t.capacity
    then evict_lru t;
    t.clock <- t.clock + 1;
    Hashtbl.replace t.tbl user { revision; profile; tick = t.clock }

let remove t ~user =
  t.lock.with_lock @@ fun () ->
  if Hashtbl.mem t.tbl user then begin
    Hashtbl.remove t.tbl user;
    t.invalidations <- t.invalidations + 1
  end

let stats t =
  t.lock.with_lock @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    invalidations = t.invalidations;
    entries = Hashtbl.length t.tbl;
  }
