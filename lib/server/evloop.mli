(** Effects-based single-domain event-loop runtime.

    The production sibling of the simulator's [Sched]: cooperative tasks
    over OCaml effects, a FIFO run queue, and an idle loop that parks in
    [Unix.select] over every fd a task is waiting on — a poll-style
    readiness loop on nonblocking sockets.  {!R} exposes it as a
    {!Runtime.S} instance, so [Server_core.Make (Evloop.R)] runs the
    whole worker-pool/admission/breaker/drain machinery unchanged on one
    domain ([serve --io evloop]).

    With [clock:`Virtual] no OS time or fd is ever touched: idle steps
    jump virtual time to the next timer and fd waits raise.  The sim's
    [Evloop_check] uses this to drive the runtime deterministically
    under the standard ledger/rwlock audits.

    All primitives must be called from inside {!run} (they perform
    effects handled by its scheduler loop); {!Failed} is raised
    otherwise.  A task exception not caught by the task is fatal to the
    whole loop. *)

exception Failed of string

type task

type clock = [ `Real | `Virtual ]

val run :
  ?clock:clock -> ?max_steps:int -> (unit -> unit) -> (unit, string) result
(** Run [main] plus everything it spawns to completion.  [Error] on
    deadlock (tasks alive, nothing runnable or pending), step-budget
    exhaustion, or a crashed task. *)

val spawn : ?name:string -> (unit -> unit) -> task
val join : task -> unit
val yield : unit -> unit

val now : unit -> float
(** Wall clock under [`Real], virtual seconds under [`Virtual]. *)

val sleep : float -> unit

val wait_readable : ?timeout:float -> Unix.file_descr -> bool
(** Park until the fd is readable; [false] when the relative [timeout]
    (seconds) elapsed first.  [`Real] clock only. *)

val wait_writable : ?timeout:float -> Unix.file_descr -> bool

val add_probe : (unit -> unit) -> unit
(** Invariant check run by the scheduler loop between steps.  Probes run
    outside any task and must not call runtime primitives. *)

(** The {!Runtime.S} instance. *)
module R : Runtime.S with type thread = task
