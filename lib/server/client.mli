(** A small blocking client for the {!Protocol} wire format — what the
    hammer tests, the smoke test and [perso_cli call] speak through. *)

type t

val connect : ?wait_ms:float -> string -> t
(** Connect to a Unix-domain socket.  [wait_ms] keeps retrying a
    refused/absent socket for that long (10 ms steps) — the "server is
    still starting" window.  @raise Unix.Unix_error when the connection
    cannot be established. *)

val connect_tcp : ?wait_ms:float -> port:int -> unit -> t
(** Connect to 127.0.0.1:[port]. *)

val set_receive_timeout : t -> float -> unit
(** Arm [SO_RCVTIMEO] (seconds): a read with no reply past the deadline
    raises instead of blocking forever.  Used by {!Loadgen} so a server
    that accepts but never answers yields a typed error, not a hang. *)

val request :
  ?deadline_ms:float ->
  ?max_rows:int ->
  ?max_expansions:int ->
  t ->
  string ->
  (Protocol.response, string) result
(** Send one command line with optional budget headers and read the
    response.  [Error] on protocol violations or a dropped connection. *)

val close : t -> unit
(** Send [QUIT] (best-effort) and close the socket. *)
