type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let of_fd fd =
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

(* Retry refused connections for [wait_ms]: covers the gap between a
   freshly spawned server process and its listen(2). *)
let connect_addr ?(wait_ms = 0.) mk_socket addr =
  let deadline = Unix.gettimeofday () +. (wait_ms /. 1000.) in
  let rec go () =
    let fd = mk_socket () in
    match Unix.connect fd addr with
    | () -> of_fd fd
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.01;
        go ()
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  go ()

let connect ?wait_ms path =
  connect_addr ?wait_ms
    (fun () -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0)
    (Unix.ADDR_UNIX path)

let connect_tcp ?wait_ms ~port () =
  connect_addr ?wait_ms
    (fun () -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0)
    (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

(* A receive deadline on the socket itself: a wedged server turns into
   a failed read instead of a hung client.  What [Loadgen] arms before
   ever trusting a server with a benchmark. *)
let set_receive_timeout t seconds =
  Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO (Float.max 0. seconds)

let request ?deadline_ms ?max_rows ?max_expansions t command =
  match
    Option.iter (Printf.fprintf t.oc "DEADLINE-MS %g\n") deadline_ms;
    Option.iter (Printf.fprintf t.oc "MAX-ROWS %d\n") max_rows;
    Option.iter (Printf.fprintf t.oc "MAX-EXPANSIONS %d\n") max_expansions;
    Printf.fprintf t.oc "%s\n" (String.trim command);
    flush t.oc
  with
  | () -> Protocol.read_response t.ic
  | exception Sys_error e -> Error ("connection lost: " ^ e)

let close t =
  (try
     Printf.fprintf t.oc "QUIT\n";
     flush t.oc
   with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
