(* The socket front end.  Everything behind the wire — admission queue,
   worker pool, budgets, breaker, drain, ledger — lives in
   {!Server_core}, instantiated here with the real-thread runtime; the
   deterministic simulation instantiates the same core with a virtual
   one. *)

module Core = Server_core.Make (Runtime.Threads)

type config = Server_core.config = {
  socket_path : string;
  tcp_port : int option;
  workers : int;
  queue_capacity : int;
  deadline_ms : float option;
  max_rows : int option;
  max_expansions : int option;
  drain_ms : float;
  breaker_threshold : int;
  breaker_cooldown_ms : float;
  dump_dir : string option;
  cache : bool;
  cache_entries : int;
  cache_mb : float;
  shards : int;
  store_dir : string option;
  replicas : int;
  profile_lru_entries : int;
}

let default_config = Server_core.default_config

type drain_outcome = Server_core.drain_outcome = {
  drained : bool;
  shed_at_stop : int;
  dump : (string, string) result option;
}

type t = {
  core : Core.t;
  cfg : config;
  listeners : Unix.file_descr list;
  mutable acceptor : Thread.t option;
  cm : Mutex.t;  (* guards conns *)
  mutable conns : (Unix.file_descr * Thread.t) list;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let request_stop t = Core.request_stop t.core
let begin_drain t = Core.begin_drain t.core
let draining t = Core.draining t.core
let health t = Core.health t.core

(* ---------------------------- connections ---------------------------- *)

let unregister_conn t fd =
  locked t.cm (fun () ->
      t.conns <- List.filter (fun (fd', _) -> fd' <> fd) t.conns)

let read_request ic =
  let rec go hdr =
    match In_channel.input_line ic with
    | None -> None
    | Some line ->
        let line = String.trim line in
        if line = "" then go hdr
        else (
          match Protocol.parse_header_line line with
          | Some update -> go (update hdr)
          | None -> Some (hdr, Protocol.parse_command line))
  in
  go Protocol.empty_header

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let finally () =
    unregister_conn t fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      try
        let rec loop () =
          match read_request ic with
          | None -> ()
          | Some (_, Error msg) ->
              Protocol.write_error oc (Perso.Error.Parse ("protocol: " ^ msg));
              loop ()
          | Some (_, Ok Protocol.Quit) -> ()
          | Some (_, Ok Protocol.Ping) ->
              Protocol.write_message oc "pong";
              loop ()
          | Some (_, Ok Protocol.Health) ->
              Protocol.write_stats oc (health t);
              loop ()
          | Some (_, Ok Protocol.Shutdown) ->
              Protocol.write_message oc "draining";
              request_stop t;
              begin_drain t;
              loop ()
          | Some (hdr, Ok cmd) ->
              (match Core.submit t.core hdr cmd with
              | Server_core.R_rows { notes; result } ->
                  Protocol.write_rows oc ~notes result
              | Server_core.R_message m -> Protocol.write_message oc m
              | Server_core.R_error e -> Protocol.write_error oc e);
              loop ()
        in
        loop ()
      with
      | End_of_file | Sys_error _ -> ()
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ())

(* ------------------------------ acceptor ----------------------------- *)

(* The acceptor keeps accepting while draining: connection threads still
   answer the control plane (HEALTH during a drain is exactly when you
   want it) and shed data commands with typed Overloaded errors — a
   client must never hang in the listen backlog.  Only a stopped core
   ends the loop, right before {!stop} closes the listeners. *)
let acceptor_loop t =
  let rec loop () =
    if Core.stop_requested t.core then begin_drain t;
    if Core.stopped t.core then ()
    else
      match Unix.select t.listeners [] [] 0.05 with
      | [], _, _ -> loop ()
      | ready, _, _ ->
          List.iter
            (fun lfd ->
              match Unix.accept lfd with
              | fd, _ ->
                  let th = Thread.create (handle_connection t) fd in
                  locked t.cm (fun () -> t.conns <- (fd, th) :: t.conns)
              | exception Unix.Unix_error _ -> ())
            ready;
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* ------------------------------- start ------------------------------- *)

let listen_unix path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let start cfg db =
  (* A dead client mid-response must error the write, not kill us. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listeners =
    listen_unix cfg.socket_path
    :: (match cfg.tcp_port with Some p -> [ listen_tcp p ] | None -> [])
  in
  let core = Core.create cfg db in
  let t =
    { core; cfg; listeners; acceptor = None; cm = Mutex.create (); conns = [] }
  in
  t.acceptor <- Some (Thread.create acceptor_loop t);
  t

(* -------------------------------- stop ------------------------------- *)

let stop t =
  Core.stop t.core ~on_quiesced:(fun () ->
      Option.iter Thread.join t.acceptor;
      (* Shutting the connection fds down unblocks their reader
         threads; each then closes its own fd. *)
      let conns = locked t.cm (fun () -> t.conns) in
      List.iter
        (fun (fd, _) ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        conns;
      List.iter (fun (_, th) -> Thread.join th) conns;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        t.listeners;
      try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())

let wait t =
  let rec await () =
    if Core.stop_requested t.core || draining t then ()
    else begin
      Thread.delay 0.05;
      await ()
    end
  in
  await ();
  stop t
