(** A circuit breaker for the profile-store / storage failure surface.

    The server wraps every operation that can raise a [Storage]-family
    fault — profile loads, profile-table rewrites, shutdown dumps — in
    one breaker.  [threshold] {e consecutive} failures trip it open;
    while open, callers skip the operation instantly (the server then
    serves unpersonalized answers instead of hammering a sick store).
    After [cooldown_ms] the breaker half-opens and admits exactly one
    probe: a success closes it again, a failure re-opens it and restarts
    the cooldown.

    The clock is injectable ([?now], milliseconds) so tests can trip,
    cool and recover the breaker deterministically without sleeping;
    paired with {!Relal.Chaos} seeds, a whole open→half-open→closed
    cycle replays exactly.  All operations are thread-safe. *)

type t

type state = Closed | Open | Half_open

val create : ?now:(unit -> float) -> threshold:int -> cooldown_ms:float -> unit -> t
(** [threshold] must be >= 1; [now] defaults to the real clock.
    @raise Invalid_argument on a non-positive threshold. *)

val state : t -> state
(** Current state; reports [Half_open] once [cooldown_ms] has elapsed
    since the trip (without consuming the probe slot). *)

val allow : t -> bool
(** May the caller attempt the protected operation now?  [true] while
    closed; [false] while open and cooling; in the half-open window the
    first caller gets [true] (claiming the single probe slot) and
    concurrent callers [false].  A caller granted [true] must report
    back via {!success} or {!failure}. *)

val success : t -> unit
(** The protected operation succeeded: reset the failure run and close. *)

val failure : t -> unit
(** The protected operation failed: extend the failure run; trips the
    breaker at [threshold] consecutive failures, and re-opens it if this
    was the half-open probe. *)

val trips : t -> int
(** Times the breaker has opened (including half-open re-opens). *)

val state_name : state -> string
(** ["closed" | "open" | "half-open"]. *)
