# Developer entry points.  `make check` is the PR gate: full build, the
# whole test suite, the seeded chaos run, and a quick-scale smoke run of
# the executor benchmark that must exit 0 and leave valid JSON behind.

BENCH_JSON := /tmp/bench_exec_smoke.json
CHAOS_SEED ?= 1337

.PHONY: all build test bench chaos check clean

all: build

build:
	dune build

test: build
	dune runtest

bench: build
	dune exec bench/main.exe

# Deterministic fault-injection run: the §7 random workload under a 5%
# seeded fault rate; every query must end in a result or a typed error.
chaos: build
	CHAOS_SEED=$(CHAOS_SEED) dune exec test/test_chaos.exe

check: build test chaos
	BENCH_SCALE=quick BENCH_EXEC_OUT=$(BENCH_JSON) dune exec bench/main.exe -- exec
	python3 -m json.tool $(BENCH_JSON) > /dev/null
	@echo "check: OK ($(BENCH_JSON) is valid JSON)"

clean:
	dune clean
