# Developer entry points.  `make check` is the PR gate: full build, the
# whole test suite, and a quick-scale smoke run of the executor benchmark
# that must exit 0 and leave valid JSON behind.

BENCH_JSON := /tmp/bench_exec_smoke.json

.PHONY: all build test bench check clean

all: build

build:
	dune build

test: build
	dune runtest

bench: build
	dune exec bench/main.exe

check: build test
	BENCH_SCALE=quick BENCH_EXEC_OUT=$(BENCH_JSON) dune exec bench/main.exe -- exec
	python3 -m json.tool $(BENCH_JSON) > /dev/null
	@echo "check: OK ($(BENCH_JSON) is valid JSON)"

clean:
	dune clean
