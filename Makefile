# Developer entry points.  `make check` is the PR gate: full build, the
# whole test suite, the seeded chaos run, and a quick-scale smoke run of
# the executor benchmark that must exit 0 and leave valid JSON behind.

BENCH_JSON := /tmp/bench_exec_smoke.json
BENCH_PERSO_JSON := /tmp/bench_perso_smoke.json
BENCH_STORE_JSON := /tmp/bench_store_smoke.json
BENCH_SERVE_JSON := /tmp/bench_serve_smoke.json
CHAOS_SEED ?= 1337

SIM_SEED ?= 42
SIM_RUNS ?= 8

.PHONY: all build test bench bench-par bench-serve chaos crash-recovery scrub-sweep serve-smoke sim check clean

all: build

build:
	dune build

test: build
	dune runtest

bench: build
	dune exec bench/main.exe

# Deterministic fault-injection run: the §7 random workload under a 5%
# seeded fault rate; every query must end in a result or a typed error.
# A failure prints the seed so the exact fault schedule replays.
chaos: build
	@CHAOS_SEED=$(CHAOS_SEED) dune exec test/test_chaos.exe || \
	  { echo "chaos: FAILED — replay with CHAOS_SEED=$(CHAOS_SEED) make chaos"; exit 1; }

# Deterministic crash-recovery sweep: replay the durable-store workload
# killing the process at every seeded storage chaos point (torn write,
# short write, fsync failure, hard crash at each WAL/manifest/compaction
# crossing), reopen, and require the recovered state to equal the
# committed prefix.  Runs as part of `dune runtest` too; this target is
# the direct entry point.
crash-recovery: build
	dune exec test/test_store_crash.exe

# Deterministic corruption sweep over the replicated tier: every
# committed store file x every corruption kind (early/late byte flip,
# torn tail) x replica counts 1-3.  Single copies must fail with the
# typed error (or count the torn-tail truncation); replicated roots
# must recover byte-identical members serving the exact oracle state,
# with the repair accounted in the failover/quarantine/catchup ledger.
# Runs as part of `dune runtest` too; this target is the direct entry
# point.
scrub-sweep: build
	dune exec test/test_scrub_sweep.exe

# The server smoke test: start `perso serve` on a Unix socket, drive
# RUN / PROFILE SAVE / PERSONALIZE / HEALTH / SHUTDOWN through
# `perso call`, and check the drain outcome (test/serve.t).
serve-smoke: build
	dune build @serve

# Deterministic simulation: seeded client fleets against the server
# core under a virtual clock, invariant audits with trace shrinking,
# the metamorphic oracle layer, and the mutation self-test (the
# injected ledger bug must be caught and shrunk to <= 10 steps).
# Failures print the exact `perso_cli sim --seed ... --steps ...`
# replay line.
sim: build
	@dune exec bin/perso_cli.exe -- sim --seed $(SIM_SEED) --runs $(SIM_RUNS) || \
	  { echo "sim: FAILED — replay with the printed 'perso_cli sim --seed ... --steps ...' line"; exit 1; }
	@dune exec bin/perso_cli.exe -- sim --mutate --seed $(SIM_SEED) --runs $(SIM_RUNS)

# Multicore scaling gate: run the exec bench (which re-times the K=60
# figure at 1/2/4/8 domains and the sharded store at 1/4/8 shards) and
# require >= 2x speedup at 4 domains — but only on hosts that actually
# have >= 4 cores.  On smaller boxes the parallel paths still run (the
# determinism suite covers correctness); the speedup number is recorded
# in the JSON alongside "cores" so readers can judge it in context.
bench-par: build
	BENCH_SCALE=quick BENCH_EXEC_OUT=$(BENCH_JSON) dune exec bench/main.exe -- exec
	python3 -m json.tool $(BENCH_JSON) > /dev/null
	@python3 -c "import json,sys; d=json.load(open('$(BENCH_JSON)')); c=d['cores']; \
	s={e['domains']:e['speedup'] for e in d['parallel']['domains']}[4]; \
	sys.exit(0 if c < 4 else (0 if s >= 2 else sys.stderr.write('bench-par: %.2fx at 4 domains on %d cores (< 2x)\n' % (s, c)) or 1)); \
	" && echo "bench-par: OK (see $(BENCH_JSON): parallel + sharded_store)"

# Serve-path load benchmark: open-loop Poisson arrivals with Zipf users
# through a real socket, once per I/O runtime (threads and evloop).  The
# gate is sanity, never absolute throughput (this may be a 1-core box):
# the JSON must parse, both runtimes' client tallies must reconcile
# exactly with the server's HEALTH ledger delta (ledger_balanced), and
# the latency quantiles must be monotone (p999 >= p50 > 0).
bench-serve: build
	BENCH_SCALE=quick BENCH_SERVE_OUT=$(BENCH_SERVE_JSON) dune exec bench/main.exe -- serve
	python3 -m json.tool $(BENCH_SERVE_JSON) > /dev/null
	@python3 -c "import json,sys; d=json.load(open('$(BENCH_SERVE_JSON)')); rs=d['runtimes']; \
	bad=[r['io'] for r in rs if not (r['ledger_balanced'] and r['req_per_s'] > 0 and 0 < r['p50_us'] <= r['p99_us'] <= r['p999_us'])]; \
	sys.exit(0 if len(rs) == 2 and not bad else sys.stderr.write('bench-serve: failed sanity for %s\n' % (bad or 'missing runtimes')) or 1); \
	" && echo "bench-serve: OK (see $(BENCH_SERVE_JSON): threads + evloop)"

check: build test chaos crash-recovery scrub-sweep serve-smoke sim bench-par bench-serve
	BENCH_SCALE=quick BENCH_PERSO_OUT=$(BENCH_PERSO_JSON) dune exec bench/main.exe -- perso
	python3 -m json.tool $(BENCH_PERSO_JSON) > /dev/null
	@python3 -c "import json,sys; d=json.load(open('$(BENCH_PERSO_JSON)')); s=d['speedup_warm']; sys.exit(0 if s >= 5 else sys.stderr.write('plan cache: warm speedup %.1fx < 5x\n' % s) or 1)"
	BENCH_SCALE=quick BENCH_STORE_OUT=$(BENCH_STORE_JSON) dune exec bench/main.exe -- store
	python3 -m json.tool $(BENCH_STORE_JSON) > /dev/null
	@python3 -c "import json,sys; d=json.load(open('$(BENCH_STORE_JSON)')); \
	r=d['recovery']; sys.exit(0 if r['records'] > 0 and r['reopen_ms'] >= 0 and d['sizes'] else 1)"
	@echo "check: OK ($(BENCH_JSON), $(BENCH_PERSO_JSON), $(BENCH_STORE_JSON) valid; plan-cache warm >= 5x)"

clean:
	dune clean
