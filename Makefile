# Developer entry points.  `make check` is the PR gate: full build, the
# whole test suite, the seeded chaos run, and a quick-scale smoke run of
# the executor benchmark that must exit 0 and leave valid JSON behind.

BENCH_JSON := /tmp/bench_exec_smoke.json
CHAOS_SEED ?= 1337

.PHONY: all build test bench chaos serve-smoke check clean

all: build

build:
	dune build

test: build
	dune runtest

bench: build
	dune exec bench/main.exe

# Deterministic fault-injection run: the §7 random workload under a 5%
# seeded fault rate; every query must end in a result or a typed error.
# A failure prints the seed so the exact fault schedule replays.
chaos: build
	@CHAOS_SEED=$(CHAOS_SEED) dune exec test/test_chaos.exe || \
	  { echo "chaos: FAILED — replay with CHAOS_SEED=$(CHAOS_SEED) make chaos"; exit 1; }

# The server smoke test: start `perso serve` on a Unix socket, drive
# RUN / PROFILE SAVE / PERSONALIZE / HEALTH / SHUTDOWN through
# `perso call`, and check the drain outcome (test/serve.t).
serve-smoke: build
	dune build @serve

check: build test chaos serve-smoke
	BENCH_SCALE=quick BENCH_EXEC_OUT=$(BENCH_JSON) dune exec bench/main.exe -- exec
	python3 -m json.tool $(BENCH_JSON) > /dev/null
	@echo "check: OK ($(BENCH_JSON) is valid JSON)"

clean:
	dune clean
