# Developer entry points.  `make check` is the PR gate: full build, the
# whole test suite, the seeded chaos run, and a quick-scale smoke run of
# the executor benchmark that must exit 0 and leave valid JSON behind.

BENCH_JSON := /tmp/bench_exec_smoke.json
BENCH_PERSO_JSON := /tmp/bench_perso_smoke.json
CHAOS_SEED ?= 1337

SIM_SEED ?= 42
SIM_RUNS ?= 8

.PHONY: all build test bench chaos serve-smoke sim check clean

all: build

build:
	dune build

test: build
	dune runtest

bench: build
	dune exec bench/main.exe

# Deterministic fault-injection run: the §7 random workload under a 5%
# seeded fault rate; every query must end in a result or a typed error.
# A failure prints the seed so the exact fault schedule replays.
chaos: build
	@CHAOS_SEED=$(CHAOS_SEED) dune exec test/test_chaos.exe || \
	  { echo "chaos: FAILED — replay with CHAOS_SEED=$(CHAOS_SEED) make chaos"; exit 1; }

# The server smoke test: start `perso serve` on a Unix socket, drive
# RUN / PROFILE SAVE / PERSONALIZE / HEALTH / SHUTDOWN through
# `perso call`, and check the drain outcome (test/serve.t).
serve-smoke: build
	dune build @serve

# Deterministic simulation: seeded client fleets against the server
# core under a virtual clock, invariant audits with trace shrinking,
# the metamorphic oracle layer, and the mutation self-test (the
# injected ledger bug must be caught and shrunk to <= 10 steps).
# Failures print the exact `perso_cli sim --seed ... --steps ...`
# replay line.
sim: build
	@dune exec bin/perso_cli.exe -- sim --seed $(SIM_SEED) --runs $(SIM_RUNS) || \
	  { echo "sim: FAILED — replay with the printed 'perso_cli sim --seed ... --steps ...' line"; exit 1; }
	@dune exec bin/perso_cli.exe -- sim --mutate --seed $(SIM_SEED) --runs $(SIM_RUNS)

check: build test chaos serve-smoke sim
	BENCH_SCALE=quick BENCH_EXEC_OUT=$(BENCH_JSON) dune exec bench/main.exe -- exec
	python3 -m json.tool $(BENCH_JSON) > /dev/null
	BENCH_SCALE=quick BENCH_PERSO_OUT=$(BENCH_PERSO_JSON) dune exec bench/main.exe -- perso
	python3 -m json.tool $(BENCH_PERSO_JSON) > /dev/null
	@python3 -c "import json,sys; d=json.load(open('$(BENCH_PERSO_JSON)')); s=d['speedup_warm']; sys.exit(0 if s >= 5 else sys.stderr.write('plan cache: warm speedup %.1fx < 5x\n' % s) or 1)"
	@echo "check: OK ($(BENCH_JSON), $(BENCH_PERSO_JSON) valid; plan-cache warm >= 5x)"

clean:
	dune clean
